// Package stats provides the statistics and reporting toolkit the
// benchmark harness uses to regenerate the paper's tables and figures:
// histograms (Fig. 5A), summary statistics, ASCII renderings of
// distributions and time series (Fig. 7), aligned-table printing
// (Tables 2-3) and CSV output for external plotting.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max, Median float64
	Q25, Q75         float64
}

// Summarize computes descriptive statistics. An empty input yields a zero
// Summary.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		return Summary{}
	}
	s := Summary{N: len(x)}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	var sum, sumsq float64
	for _, v := range sorted {
		sum += v
		sumsq += v * v
	}
	n := float64(s.N)
	s.Mean = sum / n
	variance := sumsq/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Std = math.Sqrt(variance)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.Q25 = Quantile(sorted, 0.25)
	s.Q75 = Quantile(sorted, 0.75)
	return s
}

// Quantile returns the q-quantile of an ascending-sorted sample with
// linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Pearson returns the Pearson correlation of two equal-length samples
// (0 when degenerate).
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(a))
	for i := range a {
		sx += a[i]
		sy += b[i]
		sxx += a[i] * a[i]
		syy += b[i] * b[i]
		sxy += a[i] * b[i]
	}
	den := math.Sqrt((sxx/n - sx/n*sx/n) * (syy/n - sy/n*sy/n))
	if den == 0 {
		return 0
	}
	return (sxy/n - sx/n*sy/n) / den
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram bins x into nbins equal-width bins over [lo, hi]; values
// outside clamp to the edge bins.
func NewHistogram(x []float64, lo, hi float64, nbins int) *Histogram {
	if nbins < 1 {
		nbins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	w := (hi - lo) / float64(nbins)
	for _, v := range x {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
		h.Total++
	}
	return h
}

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Mode returns the index of the fullest bin.
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// Render draws the histogram as ASCII rows of '#' bars, width columns
// wide.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%9.2f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Table renders rows as an aligned text table with the given header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, hdr := range header {
		widths[i] = len(hdr)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV writes header and rows in CSV form (minimal quoting: fields
// containing commas or quotes are quoted).
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	writeLine := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeLine(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := writeLine(r); err != nil {
			return err
		}
	}
	return nil
}

// TimeSeries renders (t, v) samples as an ASCII strip chart: time is
// discretized into width columns; each column shows the mean value scaled
// into height rows. Used for the Fig. 7 utilization plot.
func TimeSeries(ts, vs []float64, width, height int) string {
	if len(ts) == 0 || len(ts) != len(vs) {
		return "(no data)\n"
	}
	if width < 10 {
		width = 60
	}
	if height < 3 {
		height = 10
	}
	t0, t1 := ts[0], ts[len(ts)-1]
	if t1 <= t0 {
		t1 = t0 + 1
	}
	vmax := 0.0
	for _, v := range vs {
		if v > vmax {
			vmax = v
		}
	}
	if vmax == 0 {
		vmax = 1
	}
	// Column means via last-observation-carried-forward sampling.
	cols := make([]float64, width)
	idx := 0
	for c := 0; c < width; c++ {
		tc := t0 + (t1-t0)*float64(c)/float64(width-1)
		for idx+1 < len(ts) && ts[idx+1] <= tc {
			idx++
		}
		cols[c] = vs[idx]
	}
	var b strings.Builder
	for r := height; r >= 1; r-- {
		thresh := vmax * (float64(r) - 0.5) / float64(height)
		fmt.Fprintf(&b, "%8.1f |", vmax*float64(r)/float64(height))
		for c := 0; c < width; c++ {
			if cols[c] >= thresh {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  t=%.1f%s t=%.1f\n", "", t0,
		strings.Repeat(" ", maxInt(1, width-18)), t1)
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Scatter renders 2-D points as an ASCII scatter plot. Points with
// mark[i] true draw as 'O' (outliers, drawn last so they stay visible),
// others as '·' — the Fig. 5C latent-space rendering.
func Scatter(pts [][]float64, mark []bool, width, height int) string {
	if len(pts) == 0 {
		return "(no data)\n"
	}
	if width < 10 {
		width = 60
	}
	if height < 5 {
		height = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
		minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
	}
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	place := func(p []float64, c byte) {
		x := int((p[0] - minX) / (maxX - minX) * float64(width-1))
		y := int((p[1] - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-y][x] = c
	}
	for i, p := range pts {
		if mark == nil || !mark[i] {
			place(p, '.')
		}
	}
	for i, p := range pts {
		if mark != nil && mark[i] {
			place(p, 'O')
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString(strings.Repeat("-", width+2))
	b.WriteByte('\n')
	return b.String()
}
