package chem

import (
	"impeccable/internal/geom"
	"impeccable/internal/xrand"
)

// Bead is a coarse-grained interaction site of a ligand conformer.
type Bead struct {
	Pos    geom.Vec3
	Class  BeadClass
	Radius float64 // van der Waals-like radius (Å)
	Charge float64 // formal charge contribution
}

// Torsion is a rotatable bond in the ligand's kinematic chain. Rotating
// the torsion by an angle rotates every bead with index >= Moved about the
// axis from bead AxisA to bead AxisB.
type Torsion struct {
	AxisA, AxisB int // bead indices defining the rotation axis
	Moved        int // first bead index affected by this torsion
}

// Conformer is a 3-D embedding of a molecule: the input representation for
// docking (S1) and the ligand model for MD (S2/S3). Conformers are built
// deterministically from the molecule ID so docking inputs are
// reproducible, like the paper's pre-enumerated 3-D libraries.
type Conformer struct {
	MolID    uint64
	Beads    []Bead
	Torsions []Torsion
}

// beadRadius and beadCharge give per-class coarse parameters.
var beadRadius = [NumBeadClasses]float64{
	BeadHydrophobe: 1.9,
	BeadAromatic:   1.8,
	BeadDonor:      1.6,
	BeadAcceptor:   1.5,
	BeadPositive:   1.7,
	BeadNegative:   1.6,
	BeadPolar:      1.6,
}

var beadCharge = [NumBeadClasses]float64{
	BeadPositive: +1,
	BeadNegative: -1,
	BeadDonor:    +0.2,
	BeadAcceptor: -0.2,
	BeadPolar:    -0.1,
}

// NewConformer builds the canonical 3-D conformer for m: fragments are laid
// out along a backbone with deterministic jitter; a torsion is emitted at
// each rotatable inter-fragment bond.
func NewConformer(m *Molecule) *Conformer {
	r := xrand.New(m.ID ^ 0xC2B2AE3D27D4EB4F)
	c := &Conformer{MolID: m.ID}
	cursor := geom.Vec3{}
	dir := geom.Vec3{X: 1}
	for fi, idx := range m.Fragments {
		f := fragments[idx]
		first := len(c.Beads)
		for bi, class := range f.Beads {
			// Beads within a fragment cluster around the fragment
			// origin with ~1.4 Å spacing (aromatic C–C bond scale).
			jitter := geom.Vec3{
				X: r.Norm(0, 0.35),
				Y: r.Norm(0, 0.9),
				Z: r.Norm(0, 0.9),
			}
			pos := cursor.Add(dir.Scale(1.4 * float64(bi))).Add(jitter)
			c.Beads = append(c.Beads, Bead{
				Pos:    pos,
				Class:  class,
				Radius: beadRadius[class],
				Charge: beadCharge[class],
			})
		}
		// Advance the backbone cursor past this fragment and bend the
		// chain slightly, as real conformers are not linear rods.
		adv := 1.4*float64(len(f.Beads)) + 1.5
		cursor = cursor.Add(dir.Scale(adv))
		bend := geom.AxisAngle(geom.Vec3{Z: 1}, r.Norm(0, 0.5))
		dir = bend.Rotate(dir).Unit()

		// Rotatable bond between fragment fi-1 and fi.
		if fi > 0 && f.Rot > 0 && first > 0 {
			c.Torsions = append(c.Torsions, Torsion{
				AxisA: first - 1,
				AxisB: first,
				Moved: first,
			})
		}
	}
	// Center the conformer on its centroid so poses translate about the
	// molecular center.
	pts := make([]geom.Vec3, len(c.Beads))
	for i := range c.Beads {
		pts[i] = c.Beads[i].Pos
	}
	ctr := geom.Centroid(pts)
	for i := range c.Beads {
		c.Beads[i].Pos = c.Beads[i].Pos.Sub(ctr)
	}
	return c
}

// NumTorsions returns the number of rotatable bonds in the conformer.
func (c *Conformer) NumTorsions() int { return len(c.Torsions) }

// Positions returns a copy of the bead coordinates.
func (c *Conformer) Positions() []geom.Vec3 {
	pts := make([]geom.Vec3, len(c.Beads))
	for i := range c.Beads {
		pts[i] = c.Beads[i].Pos
	}
	return pts
}

// Apply returns the bead positions under a pose transform: torsion angles
// are applied along the kinematic chain, then the rigid rotation q, then
// translation t. The receiver is not modified. The dst slice is reused if
// it has sufficient capacity.
func (c *Conformer) Apply(t geom.Vec3, q geom.Quat, torsionAngles []float64, dst []geom.Vec3) []geom.Vec3 {
	if cap(dst) < len(c.Beads) {
		dst = make([]geom.Vec3, len(c.Beads))
	}
	dst = dst[:len(c.Beads)]
	for i := range c.Beads {
		dst[i] = c.Beads[i].Pos
	}
	// Torsions first, in chain order: rotating torsion k moves beads
	// [Moved, end) about the (possibly already-moved) axis.
	for k, tor := range c.Torsions {
		if k >= len(torsionAngles) {
			break
		}
		ang := torsionAngles[k]
		if ang == 0 {
			continue
		}
		origin := dst[tor.AxisA]
		axis := dst[tor.AxisB].Sub(origin)
		rot := geom.AxisAngle(axis, ang)
		for i := tor.Moved; i < len(dst); i++ {
			dst[i] = rot.Rotate(dst[i].Sub(origin)).Add(origin)
		}
	}
	for i := range dst {
		dst[i] = q.Rotate(dst[i]).Add(t)
	}
	return dst
}
