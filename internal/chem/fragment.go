// Package chem implements the synthetic chemistry substrate of the
// IMPECCABLE reproduction: a deterministic generative model of drug-like
// molecules with SMILES-like canonical strings, Morgan-style hashed
// fingerprints, physicochemical descriptors, 3-D conformers with rotatable
// torsions, and compound libraries (the paper's OZD and ORD sets) that are
// generated lazily by index so that multi-million-compound libraries need
// no storage.
//
// The paper consumes real libraries (ZINC, MCULE, Enamine, DrugBank)
// through exactly two interfaces: a cheap 2-D feature view for the ML
// surrogate, and a docking/MD oracle for the physics stages. The synthetic
// substitute preserves both: molecules are composed of fragments with
// realistic descriptor statistics, structurally similar molecules (shared
// fragments) have both similar fingerprints and similar hidden
// pharmacophores, so learnability and diversity structure carry over.
package chem

import "impeccable/internal/xrand"

// BeadClass categorizes a coarse-grained interaction bead. The docking
// scoring function and the MD force field assign pairwise well depths by
// class, mirroring AutoDock atom types at a coarse level.
type BeadClass uint8

// Bead classes used by fragments.
const (
	BeadHydrophobe BeadClass = iota // aliphatic carbon
	BeadAromatic                    // ring carbon
	BeadDonor                       // H-bond donor
	BeadAcceptor                    // H-bond acceptor
	BeadPositive                    // cationic
	BeadNegative                    // anionic
	BeadPolar                       // neutral polar
	NumBeadClasses
)

// String returns a short mnemonic for the class.
func (c BeadClass) String() string {
	switch c {
	case BeadHydrophobe:
		return "C"
	case BeadAromatic:
		return "Ar"
	case BeadDonor:
		return "D"
	case BeadAcceptor:
		return "A"
	case BeadPositive:
		return "P+"
	case BeadNegative:
		return "N-"
	case BeadPolar:
		return "O"
	default:
		return "?"
	}
}

// PharmaDim is the dimensionality of the hidden pharmacophore embedding
// that ties molecular structure to ground-truth receptor affinity.
const PharmaDim = 16

// Fragment is a reusable substructure from which molecules are assembled.
// Descriptor contributions are additive over a molecule's fragments;
// fragment co-occurrence also contributes pairwise pharmacophore terms.
type Fragment struct {
	Token    string  // SMILES-like token emitted into the molecule string
	MW       float64 // molecular weight contribution (Da)
	LogP     float64 // octanol/water partition contribution
	HBD      int     // H-bond donors contributed
	HBA      int     // H-bond acceptors contributed
	TPSA     float64 // topological polar surface area contribution (Å²)
	Rot      int     // rotatable bonds contributed at the attachment point
	Ring     bool    // whether the fragment contains a ring
	Beads    []BeadClass
	Pharma   [PharmaDim]float64 // hidden embedding (derived, see init)
	Weight   float64            // sampling weight in the generator
	Terminal bool               // only valid at chain ends (caps)
}

// fragments is the global fragment alphabet. Tokens are loosely modeled on
// common medicinal-chemistry substructures; descriptor contributions are in
// realistic ranges so that generated molecules have ZINC-like descriptor
// distributions.
var fragments = []Fragment{
	{Token: "c1ccccc1", MW: 77.1, LogP: 1.69, TPSA: 0, Ring: true, Rot: 1, Weight: 10,
		Beads: []BeadClass{BeadAromatic, BeadAromatic, BeadAromatic}},
	{Token: "c1ccncc1", MW: 78.1, LogP: 0.65, HBA: 1, TPSA: 12.9, Ring: true, Rot: 1, Weight: 7,
		Beads: []BeadClass{BeadAromatic, BeadAromatic, BeadAcceptor}},
	{Token: "c1ccc2ccccc2c1", MW: 127.2, LogP: 2.96, TPSA: 0, Ring: true, Rot: 1, Weight: 3,
		Beads: []BeadClass{BeadAromatic, BeadAromatic, BeadAromatic, BeadAromatic}},
	{Token: "c1cc[nH]c1", MW: 66.1, LogP: 0.75, HBD: 1, TPSA: 15.8, Ring: true, Rot: 1, Weight: 4,
		Beads: []BeadClass{BeadAromatic, BeadDonor}},
	{Token: "c1csc(n1)", MW: 84.1, LogP: 0.44, HBA: 2, TPSA: 41.1, Ring: true, Rot: 1, Weight: 4,
		Beads: []BeadClass{BeadAromatic, BeadAcceptor, BeadAcceptor}},
	{Token: "C1CCNCC1", MW: 84.2, LogP: 0.84, HBD: 1, HBA: 1, TPSA: 12.0, Ring: true, Rot: 1, Weight: 6,
		Beads: []BeadClass{BeadHydrophobe, BeadHydrophobe, BeadDonor}},
	{Token: "C1CCOC1", MW: 71.1, LogP: 0.46, HBA: 1, TPSA: 9.2, Ring: true, Rot: 1, Weight: 4,
		Beads: []BeadClass{BeadHydrophobe, BeadAcceptor}},
	{Token: "N1CCN(CC1)", MW: 85.1, LogP: -0.3, HBD: 1, HBA: 2, TPSA: 15.3, Ring: true, Rot: 1, Weight: 5,
		Beads: []BeadClass{BeadDonor, BeadAcceptor, BeadHydrophobe}},
	{Token: "C1CC1", MW: 41.1, LogP: 1.1, TPSA: 0, Ring: true, Rot: 1, Weight: 3,
		Beads: []BeadClass{BeadHydrophobe, BeadHydrophobe}},
	{Token: "CC", MW: 29.1, LogP: 1.0, TPSA: 0, Rot: 1, Weight: 8,
		Beads: []BeadClass{BeadHydrophobe}},
	{Token: "CCC", MW: 43.1, LogP: 1.5, TPSA: 0, Rot: 2, Weight: 5,
		Beads: []BeadClass{BeadHydrophobe, BeadHydrophobe}},
	{Token: "C(C)(C)C", MW: 57.1, LogP: 1.98, TPSA: 0, Rot: 1, Weight: 3,
		Beads: []BeadClass{BeadHydrophobe, BeadHydrophobe}},
	{Token: "C(=O)N", MW: 44.0, LogP: -1.0, HBD: 1, HBA: 1, TPSA: 43.1, Rot: 1, Weight: 7,
		Beads: []BeadClass{BeadAcceptor, BeadDonor}},
	{Token: "C(=O)O", MW: 45.0, LogP: -0.7, HBD: 1, HBA: 2, TPSA: 37.3, Rot: 1, Weight: 4,
		Beads: []BeadClass{BeadNegative, BeadAcceptor}},
	{Token: "C(=O)", MW: 28.0, LogP: -0.55, HBA: 1, TPSA: 17.1, Rot: 1, Weight: 5,
		Beads: []BeadClass{BeadAcceptor}},
	{Token: "S(=O)(=O)N", MW: 80.1, LogP: -1.8, HBD: 1, HBA: 2, TPSA: 60.2, Rot: 1, Weight: 3,
		Beads: []BeadClass{BeadPolar, BeadAcceptor, BeadDonor}},
	{Token: "S(=O)(=O)", MW: 64.1, LogP: -1.6, HBA: 2, TPSA: 42.5, Rot: 1, Weight: 2,
		Beads: []BeadClass{BeadPolar, BeadAcceptor}},
	{Token: "N", MW: 15.0, LogP: -1.0, HBD: 1, HBA: 1, TPSA: 26.0, Rot: 1, Weight: 6,
		Beads: []BeadClass{BeadDonor}},
	{Token: "NC(=O)", MW: 43.0, LogP: -0.9, HBD: 1, HBA: 1, TPSA: 43.1, Rot: 1, Weight: 5,
		Beads: []BeadClass{BeadDonor, BeadAcceptor}},
	{Token: "O", MW: 16.0, LogP: -0.8, HBA: 1, TPSA: 9.2, Rot: 1, Weight: 6,
		Beads: []BeadClass{BeadAcceptor}},
	{Token: "OC", MW: 31.0, LogP: -0.4, HBA: 1, TPSA: 9.2, Rot: 2, Weight: 4,
		Beads: []BeadClass{BeadAcceptor, BeadHydrophobe}},
	{Token: "[NH3+]", MW: 17.0, LogP: -2.5, HBD: 3, TPSA: 27.6, Rot: 0, Weight: 2, Terminal: true,
		Beads: []BeadClass{BeadPositive}},
	{Token: "C(F)(F)F", MW: 69.0, LogP: 1.1, TPSA: 0, Rot: 0, Weight: 3, Terminal: true,
		Beads: []BeadClass{BeadHydrophobe}},
	{Token: "Cl", MW: 35.5, LogP: 0.7, TPSA: 0, Rot: 0, Weight: 4, Terminal: true,
		Beads: []BeadClass{BeadHydrophobe}},
	{Token: "F", MW: 19.0, LogP: 0.2, TPSA: 0, Rot: 0, Weight: 4, Terminal: true,
		Beads: []BeadClass{BeadHydrophobe}},
	{Token: "Br", MW: 79.9, LogP: 0.9, TPSA: 0, Rot: 0, Weight: 2, Terminal: true,
		Beads: []BeadClass{BeadHydrophobe}},
	{Token: "C#N", MW: 26.0, LogP: -0.3, HBA: 1, TPSA: 23.8, Rot: 0, Weight: 3, Terminal: true,
		Beads: []BeadClass{BeadAcceptor}},
	{Token: "[O-]", MW: 16.0, LogP: -1.5, HBA: 1, TPSA: 23.1, Rot: 0, Weight: 1, Terminal: true,
		Beads: []BeadClass{BeadNegative}},
	{Token: "c1ccc(cc1)O", MW: 93.1, LogP: 1.46, HBD: 1, HBA: 1, TPSA: 20.2, Ring: true, Rot: 1, Weight: 4,
		Beads: []BeadClass{BeadAromatic, BeadAromatic, BeadDonor}},
	{Token: "c1ccc(cc1)N", MW: 92.1, LogP: 0.9, HBD: 1, HBA: 1, TPSA: 26.0, Ring: true, Rot: 1, Weight: 3,
		Beads: []BeadClass{BeadAromatic, BeadAromatic, BeadDonor}},
	{Token: "n1cnc2[nH]cnc12", MW: 119.1, LogP: -0.1, HBD: 1, HBA: 3, TPSA: 54.5, Ring: true, Rot: 1, Weight: 2,
		Beads: []BeadClass{BeadAromatic, BeadAcceptor, BeadDonor, BeadAcceptor}},
	{Token: "C1CCCCC1", MW: 83.2, LogP: 2.3, TPSA: 0, Ring: true, Rot: 1, Weight: 4,
		Beads: []BeadClass{BeadHydrophobe, BeadHydrophobe, BeadHydrophobe}},
}

// init derives each fragment's hidden pharmacophore embedding from a hash
// of its token, so the embedding is stable across runs and uncorrelated
// between fragments, then mixes in descriptor signal so that the embedding
// is (realistically) partially predictable from 2-D features.
func init() {
	for i := range fragments {
		f := &fragments[i]
		h := hashString(f.Token)
		r := xrand.New(h)
		for k := 0; k < PharmaDim; k++ {
			f.Pharma[k] = r.NormFloat64() * 0.7
		}
		// Descriptor-correlated components: these make the hidden
		// affinity partially learnable from fingerprints/descriptors,
		// which is the regime the paper's Fig. 4 RES analysis probes.
		f.Pharma[0] += 0.02 * f.LogP * 10
		f.Pharma[1] += 0.01 * f.TPSA
		f.Pharma[2] += 0.25 * float64(f.HBD)
		f.Pharma[3] += 0.25 * float64(f.HBA)
		if f.Ring {
			f.Pharma[4] += 0.5
		}
	}
}

func hashString(s string) uint64 {
	// FNV-1a 64-bit.
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// FragmentCount returns the size of the fragment alphabet.
func FragmentCount() int { return len(fragments) }

// FragmentByIndex returns a copy of the i-th fragment.
func FragmentByIndex(i int) Fragment { return fragments[i] }
