package chem

import "math/bits"

// FingerprintBits is the width of the hashed structural fingerprint.
// 256 bits is a common folded-ECFP size and keeps the surrogate's input
// dimensionality tractable.
const FingerprintBits = 256

// fpWords is the number of 64-bit words backing a fingerprint.
const fpWords = FingerprintBits / 64

// Fingerprint is a folded, hashed circular fingerprint in the spirit of
// ECFP/Morgan fingerprints: substructure environments of radius 0, 1 and 2
// (fragment; fragment+predecessor; fragment+both neighbours) are hashed
// into a fixed-width bit vector.
type Fingerprint [fpWords]uint64

// computeFingerprint hashes radius-0/1/2 fragment environments into bits.
func computeFingerprint(frags []int) Fingerprint {
	var fp Fingerprint
	set := func(h uint64) {
		fp[(h>>6)%fpWords] |= 1 << (h & 63)
	}
	for i, f := range frags {
		h0 := mixFP(uint64(f) + 1)
		set(h0)
		if i > 0 {
			h1 := mixFP(h0*31 + uint64(frags[i-1]) + 1)
			set(h1)
			if i+1 < len(frags) {
				h2 := mixFP(h1*37 + uint64(frags[i+1]) + 1)
				set(h2)
			}
		}
	}
	return fp
}

func mixFP(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCD
	z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53
	return z ^ (z >> 33)
}

// Bit reports whether bit i is set.
func (f Fingerprint) Bit(i int) bool {
	return f[i>>6]&(1<<(uint(i)&63)) != 0
}

// PopCount returns the number of set bits.
func (f Fingerprint) PopCount() int {
	n := 0
	for _, w := range f {
		n += bits.OnesCount64(w)
	}
	return n
}

// Tanimoto returns the Tanimoto (Jaccard) similarity between two
// fingerprints: |a∧b| / |a∨b|. Two empty fingerprints have similarity 1.
func Tanimoto(a, b Fingerprint) float64 {
	var and, or int
	for i := 0; i < fpWords; i++ {
		and += bits.OnesCount64(a[i] & b[i])
		or += bits.OnesCount64(a[i] | b[i])
	}
	if or == 0 {
		return 1
	}
	return float64(and) / float64(or)
}

// Distance returns the Soergel distance 1 - Tanimoto(a, b), a proper
// metric on fingerprint space used by the MaxMin diversity picker.
func Distance(a, b Fingerprint) float64 { return 1 - Tanimoto(a, b) }
