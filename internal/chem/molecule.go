package chem

import (
	"fmt"
	"strings"

	"impeccable/internal/xrand"
)

// Descriptors are the classical 2-D physicochemical descriptors used for
// featurization, filtering (Lipinski) and reporting.
type Descriptors struct {
	MW         float64 // molecular weight (Da)
	LogP       float64 // lipophilicity
	HBD        int     // H-bond donors
	HBA        int     // H-bond acceptors
	TPSA       float64 // topological polar surface area (Å²)
	RotBonds   int     // rotatable bonds
	Rings      int     // ring count
	HeavyAtoms int     // heavy-atom (bead) count
}

// Molecule is a synthetic compound. A molecule is fully determined by its
// 64-bit ID: the same ID regenerates the same structure, descriptors,
// fingerprint and hidden pharmacophore in any process, which lets
// multi-million-compound libraries exist without storage.
type Molecule struct {
	ID        uint64
	SMILES    string
	Fragments []int // indices into the fragment alphabet, in chain order
	Desc      Descriptors
	pharma    [PharmaDim]float64
	fp        Fingerprint
}

// FromID deterministically materializes the molecule with the given ID.
func FromID(id uint64) *Molecule {
	r := xrand.New(id ^ 0xD6E8FEB86659FD93)
	nf := 2 + r.Intn(6) // 2..7 fragments
	m := &Molecule{ID: id, Fragments: make([]int, 0, nf)}

	weights := make([]float64, len(fragments))
	for i, f := range fragments {
		weights[i] = f.Weight
	}
	for k := 0; k < nf; k++ {
		idx := r.Choice(weights)
		f := fragments[idx]
		if f.Terminal && k != nf-1 {
			// Terminal caps may only close the chain; resample once,
			// accepting whatever comes (keeps generation O(1)).
			idx = r.Choice(weights)
			f = fragments[idx]
			if f.Terminal && k != nf-1 {
				idx = 0 // fall back to benzene
				f = fragments[idx]
			}
		}
		m.Fragments = append(m.Fragments, idx)
	}
	m.finalize(r)
	return m
}

// finalize derives the string, descriptors, pharmacophore and fingerprint
// from the fragment chain.
func (m *Molecule) finalize(r *xrand.RNG) {
	var b strings.Builder
	for i, idx := range m.Fragments {
		f := fragments[idx]
		if i > 0 {
			b.WriteByte('C') // linker atom
		}
		b.WriteString(f.Token)
		m.Desc.MW += f.MW
		m.Desc.LogP += f.LogP
		m.Desc.HBD += f.HBD
		m.Desc.HBA += f.HBA
		m.Desc.TPSA += f.TPSA
		if i > 0 {
			m.Desc.RotBonds += f.Rot
		}
		if f.Ring {
			m.Desc.Rings++
		}
		m.Desc.HeavyAtoms += len(f.Beads)
		for k := 0; k < PharmaDim; k++ {
			m.pharma[k] += f.Pharma[k]
		}
	}
	// Linker atoms contribute weight and a heavy atom each.
	nLink := len(m.Fragments) - 1
	m.Desc.MW += 12.0 * float64(nLink)
	m.Desc.HeavyAtoms += nLink
	m.SMILES = b.String()

	// Pairwise fragment-interaction pharmacophore terms: adjacent
	// fragments interact, so the affinity landscape is not purely
	// additive (docking and MD would be pointless against a linear
	// ground truth).
	for i := 0; i+1 < len(m.Fragments); i++ {
		h := xrand.NewFrom(uint64(m.Fragments[i])<<32|uint64(m.Fragments[i+1]), 0xA5A5)
		for k := 0; k < PharmaDim; k++ {
			m.pharma[k] += 0.3 * h.NormFloat64()
		}
	}
	// Small molecule-specific idiosyncrasy (conformational preference,
	// stereochemistry...) so no two molecules are exactly alike even
	// with identical fragment chains.
	for k := 0; k < PharmaDim; k++ {
		m.pharma[k] += 0.15 * r.NormFloat64()
	}
	m.fp = computeFingerprint(m.Fragments)
}

// Pharma returns the hidden pharmacophore embedding. Only the receptor
// ground-truth oracle may consult this; pipeline stages must work from
// SMILES/fingerprints/poses like their real counterparts.
func (m *Molecule) Pharma() [PharmaDim]float64 { return m.pharma }

// FP returns the molecule's hashed structural fingerprint.
func (m *Molecule) FP() Fingerprint { return m.fp }

// Lipinski reports whether the molecule satisfies Lipinski's rule of five
// (the standard drug-likeness filter applied when building screening
// libraries).
func (m *Molecule) Lipinski() bool {
	d := m.Desc
	return d.MW <= 500 && d.LogP <= 5 && d.HBD <= 5 && d.HBA <= 10
}

// String implements fmt.Stringer with a compact identity line.
func (m *Molecule) String() string {
	return fmt.Sprintf("mol-%016x %s (MW %.1f, logP %.2f)", m.ID, m.SMILES, m.Desc.MW, m.Desc.LogP)
}

// FeatureVector flattens fingerprint bits and normalized descriptors into
// the input representation consumed by the ML1 surrogate. The layout is
// [fingerprint bits (0/1)..., MW/500, logP/5, HBD/5, HBA/10, TPSA/150,
// RotBonds/10, Rings/5, HeavyAtoms/40].
func (m *Molecule) FeatureVector() []float64 {
	v := make([]float64, FeatureDim)
	m.FeatureVectorInto(v)
	return v
}

// FeatureVectorInto writes the feature vector into v (length FeatureDim),
// overwriting every element, so batched inference can featurize directly
// into reused kernel input buffers. Panics if len(v) != FeatureDim.
func (m *Molecule) FeatureVectorInto(v []float64) {
	if len(v) != FeatureDim {
		panic(fmt.Sprintf("chem: FeatureVectorInto dst length %d, want %d", len(v), FeatureDim))
	}
	for i := 0; i < FingerprintBits; i++ {
		if m.fp.Bit(i) {
			v[i] = 1
		} else {
			v[i] = 0
		}
	}
	d := m.Desc
	v[FingerprintBits+0] = d.MW / 500
	v[FingerprintBits+1] = d.LogP / 5
	v[FingerprintBits+2] = float64(d.HBD) / 5
	v[FingerprintBits+3] = float64(d.HBA) / 10
	v[FingerprintBits+4] = d.TPSA / 150
	v[FingerprintBits+5] = float64(d.RotBonds) / 10
	v[FingerprintBits+6] = float64(d.Rings) / 5
	v[FingerprintBits+7] = float64(d.HeavyAtoms) / 40
}

// FeatureDim is the length of FeatureVector.
const FeatureDim = FingerprintBits + 8
