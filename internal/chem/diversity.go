package chem

// MaxMinDiverse selects k structurally diverse molecules from the candidate
// set using the MaxMin algorithm over Soergel (1-Tanimoto) fingerprint
// distance: starting from the given seed index, each step adds the
// candidate whose minimum distance to the already-selected set is largest.
//
// This reproduces the paper's §7.1.2 step, which picks "the structurally
// most diverse compounds" from the docking winners before spending
// CG-ESMACS node-hours on them. Returns indices into mols.
func MaxMinDiverse(mols []*Molecule, k int, seed int) []int {
	n := len(mols)
	if k >= n {
		sel := make([]int, n)
		for i := range sel {
			sel[i] = i
		}
		return sel
	}
	if n == 0 || k <= 0 {
		return nil
	}
	if seed < 0 || seed >= n {
		seed = 0
	}
	fps := make([]Fingerprint, n)
	for i, m := range mols {
		fps[i] = m.FP()
	}
	selected := make([]int, 0, k)
	selected = append(selected, seed)
	// minDist[i] = distance from candidate i to the nearest selected.
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = Distance(fps[i], fps[seed])
	}
	minDist[seed] = -1 // mark selected
	for len(selected) < k {
		best, bestD := -1, -1.0
		for i, d := range minDist {
			if d > bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		minDist[best] = -1
		for i := range minDist {
			if minDist[i] < 0 {
				continue
			}
			if d := Distance(fps[i], fps[best]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return selected
}

// MeanPairwiseDistance returns the mean Soergel distance over all pairs of
// the given molecules (a diversity score; 0 for fewer than two molecules).
func MeanPairwiseDistance(mols []*Molecule) float64 {
	n := len(mols)
	if n < 2 {
		return 0
	}
	var sum float64
	var cnt int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += Distance(mols[i].FP(), mols[j].FP())
			cnt++
		}
	}
	return sum / float64(cnt)
}
