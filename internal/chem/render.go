package chem

import "math"

// ImageSize is the side length of the 2-D molecule depictions used by the
// image-based surrogate variant (the paper renders molecules with rdKit's
// mol2D drawer and feeds them to a ResNet-50; this substrate renders the
// conformer's 2-D projection at a resolution matched to its CNN).
const ImageSize = 16

// ImageChannels encodes atom coloring: channel 0 carries the carbon
// skeleton (hydrophobic + aromatic beads), channel 1 H-bond donors and
// cations, channel 2 acceptors, anions and neutral polar beads.
const ImageChannels = 3

// ImageDim is the flattened image length.
const ImageDim = ImageChannels * ImageSize * ImageSize

// channelOf maps a bead class to its depiction channel.
func channelOf(c BeadClass) int {
	switch c {
	case BeadHydrophobe, BeadAromatic:
		return 0
	case BeadDonor, BeadPositive:
		return 1
	default:
		return 2
	}
}

// Render2D draws the molecule's canonical conformer as a 2-D depiction:
// beads are orthographically projected onto the x-y plane, scaled to the
// canvas, and splatted as small Gaussians into their class channel. The
// output is flattened channel-major (ImageDim values in [0, ~1]).
func Render2D(m *Molecule) []float64 {
	conf := NewConformer(m)
	img := make([]float64, ImageDim)
	if len(conf.Beads) == 0 {
		return img
	}
	// Bounding box of the projection, padded.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, b := range conf.Beads {
		minX, maxX = math.Min(minX, b.Pos.X), math.Max(maxX, b.Pos.X)
		minY, maxY = math.Min(minY, b.Pos.Y), math.Max(maxY, b.Pos.Y)
	}
	spanX := maxX - minX
	spanY := maxY - minY
	span := math.Max(spanX, spanY)
	if span < 1 {
		span = 1
	}
	pad := 0.1 * span
	scale := float64(ImageSize-1) / (span + 2*pad)
	// Center the drawing.
	offX := (span - spanX) / 2
	offY := (span - spanY) / 2

	const sigma = 0.8 // splat width in pixels
	for _, b := range conf.Beads {
		px := (b.Pos.X - minX + pad + offX) * scale
		py := (b.Pos.Y - minY + pad + offY) * scale
		ch := channelOf(b.Class)
		x0, x1 := int(px)-2, int(px)+2
		y0, y1 := int(py)-2, int(py)+2
		for y := y0; y <= y1; y++ {
			if y < 0 || y >= ImageSize {
				continue
			}
			for x := x0; x <= x1; x++ {
				if x < 0 || x >= ImageSize {
					continue
				}
				dx := float64(x) - px
				dy := float64(y) - py
				img[(ch*ImageSize+y)*ImageSize+x] += math.Exp(-(dx*dx + dy*dy) / (2 * sigma * sigma))
			}
		}
	}
	// Soft clamp so dense molecules do not blow up intensities.
	for i, v := range img {
		img[i] = math.Tanh(v)
	}
	return img
}
