package chem

import (
	"fmt"
	"sort"
	"strings"

	"impeccable/internal/xrand"
)

// The SMILES-like strings this package emits have the grammar
//
//	molecule := fragment ("C" fragment)*
//
// over the fragment alphabet's tokens. ParseSMILES inverts Molecule
// generation: it recovers the fragment chain by greedy longest-token
// matching and rebuilds the molecule. Because a molecule's descriptors,
// fingerprint and conformer are functions of its fragment chain (plus a
// chain-derived idiosyncrasy seed for parsed molecules), parsing gives a
// fully usable Molecule for every pipeline stage.

// tokensByLength caches fragment tokens sorted longest-first for greedy
// matching, with their indices.
var tokensByLength []struct {
	token string
	idx   int
}

func init() {
	for i, f := range fragments {
		tokensByLength = append(tokensByLength, struct {
			token string
			idx   int
		}{f.Token, i})
	}
	sort.Slice(tokensByLength, func(a, b int) bool {
		if len(tokensByLength[a].token) != len(tokensByLength[b].token) {
			return len(tokensByLength[a].token) > len(tokensByLength[b].token)
		}
		return tokensByLength[a].token < tokensByLength[b].token
	})
}

// ParseSMILES parses a SMILES-like string produced by this package (or
// hand-written over the same fragment alphabet) into a Molecule. The
// grammar is ambiguous at C-boundaries (as real SMILES is before
// canonicalization); the parser resolves ambiguity by backtracking with
// longest-token preference, so it accepts every string the generator can
// emit. The returned molecule's ID derives from the recovered fragment
// chain, so the same string always parses to the same molecule.
func ParseSMILES(s string) (*Molecule, error) {
	if s == "" {
		return nil, fmt.Errorf("chem: empty SMILES")
	}
	p := &smilesParser{s: s, failed: make(map[int]bool)}
	frags, ok := p.parse(0, true)
	if !ok || len(frags) == 0 {
		return nil, fmt.Errorf("chem: cannot parse SMILES %q (furthest offset %d)",
			truncate(s, 24), p.furthest)
	}
	return FromFragments(frags), nil
}

type smilesParser struct {
	s        string
	failed   map[int]bool // non-initial positions proven unparseable
	furthest int          // deepest failure offset, for error messages
}

// parse consumes s[pos:] as (linker? token)* — linker required unless
// first — returning the fragment chain.
func (p *smilesParser) parse(pos int, first bool) ([]int, bool) {
	if pos == len(p.s) {
		return nil, true
	}
	if !first && p.failed[pos] {
		return nil, false
	}
	at := pos
	if !first {
		if p.s[at] != 'C' {
			p.fail(pos, first)
			return nil, false
		}
		at++
	}
	for _, t := range tokensByLength {
		if !strings.HasPrefix(p.s[at:], t.token) {
			continue
		}
		if tail, ok := p.parse(at+len(t.token), false); ok {
			return append([]int{t.idx}, tail...), true
		}
	}
	p.fail(pos, first)
	return nil, false
}

func (p *smilesParser) fail(pos int, first bool) {
	if !first {
		p.failed[pos] = true
	}
	if pos > p.furthest {
		p.furthest = pos
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// FromFragments builds the molecule with the given fragment chain. The
// molecule ID (and hence the idiosyncratic part of its pharmacophore and
// its conformer geometry) is derived deterministically from the chain, so
// structurally identical inputs are the same compound.
func FromFragments(frags []int) *Molecule {
	if len(frags) == 0 {
		panic("chem: FromFragments with empty chain")
	}
	var h uint64 = 0x9AE16A3B2F90404F
	for _, f := range frags {
		h = h*0x100000001B3 + uint64(f) + 1
	}
	m := &Molecule{ID: h, Fragments: append([]int(nil), frags...)}
	m.finalize(xrand.New(h ^ 0xD6E8FEB86659FD93))
	return m
}
