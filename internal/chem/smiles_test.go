package chem

import (
	"testing"

	"impeccable/internal/xrand"
)

func TestParseSMILESRoundTripFragments(t *testing.T) {
	// Parsing the SMILES of a generated molecule must recover a molecule
	// with the same canonical string and identical descriptors and
	// fingerprint (fragment-chain determined).
	r := xrand.New(1)
	misparsed := 0
	const n = 500
	for i := 0; i < n; i++ {
		orig := FromID(r.Uint64())
		parsed, err := ParseSMILES(orig.SMILES)
		if err != nil {
			t.Fatalf("mol %d (%s): %v", i, orig.SMILES, err)
		}
		if !equalChains(parsed.Fragments, orig.Fragments) {
			// The emitted grammar is ambiguous at C-boundaries (like
			// real SMILES before canonicalization): distinct chains
			// can print identically, and greedy matching may pick a
			// different valid split. Count these; they must be rare.
			misparsed++
			continue
		}
		if parsed.SMILES != orig.SMILES {
			t.Fatalf("same chain, different SMILES: %q vs %q", parsed.SMILES, orig.SMILES)
		}
		if parsed.Desc != orig.Desc {
			t.Fatalf("descriptors differ after round trip: %+v vs %+v",
				parsed.Desc, orig.Desc)
		}
		if parsed.FP() != orig.FP() {
			t.Fatal("fingerprint differs after round trip")
		}
	}
	if misparsed > n/5 {
		t.Fatalf("too many ambiguous parses: %d/%d", misparsed, n)
	}
	t.Logf("round-trip exact for %d/%d molecules", n-misparsed, n)
}

func equalChains(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParseSMILESStable(t *testing.T) {
	a, err := ParseSMILES("c1ccccc1CC(=O)N")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSMILES("c1ccccc1CC(=O)N")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID || a.SMILES != b.SMILES {
		t.Fatal("parsing not deterministic")
	}
	if a.Desc.Rings != 1 {
		t.Fatalf("benzene ring not counted: %+v", a.Desc)
	}
	if a.Desc.HBD < 1 || a.Desc.HBA < 1 {
		t.Fatalf("amide donors/acceptors not counted: %+v", a.Desc)
	}
}

func TestParseSMILESErrors(t *testing.T) {
	for _, bad := range []string{"", "Xx", "c1ccccc1CZZZ"} {
		if _, err := ParseSMILES(bad); err == nil {
			t.Fatalf("no error for %q", bad)
		}
	}
}

func TestFromFragmentsIdentity(t *testing.T) {
	a := FromFragments([]int{0, 12, 19})
	b := FromFragments([]int{0, 12, 19})
	if a.ID != b.ID || a.Pharma() != b.Pharma() {
		t.Fatal("FromFragments not deterministic")
	}
	c := FromFragments([]int{0, 19, 12})
	if c.ID == a.ID {
		t.Fatal("order-insensitive ID collision")
	}
}

func TestFromFragmentsPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromFragments(nil)
}

func TestParsedMoleculeWorksDownstream(t *testing.T) {
	// Parsed molecules must be usable by every stage: conformer, feature
	// vector, image rendering.
	m, err := ParseSMILES("C1CCNCC1Cc1ccncc1CC(=O)O")
	if err != nil {
		t.Fatal(err)
	}
	if c := NewConformer(m); len(c.Beads) == 0 {
		t.Fatal("no conformer")
	}
	if v := m.FeatureVector(); len(v) != FeatureDim {
		t.Fatal("bad feature vector")
	}
	if img := Render2D(m); len(img) != ImageDim {
		t.Fatal("bad depiction")
	}
}

func BenchmarkParseSMILES(b *testing.B) {
	s := FromID(1).SMILES
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ParseSMILES(s)
	}
}
