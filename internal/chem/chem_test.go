package chem

import (
	"math"
	"testing"
	"testing/quick"

	"impeccable/internal/geom"
	"impeccable/internal/xrand"
)

func TestFromIDDeterministic(t *testing.T) {
	f := func(id uint64) bool {
		a := FromID(id)
		b := FromID(id)
		return a.SMILES == b.SMILES && a.Desc == b.Desc && a.FP() == b.FP() && a.Pharma() == b.Pharma()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctIDsDistinctMolecules(t *testing.T) {
	seen := make(map[string]int)
	for id := uint64(0); id < 500; id++ {
		seen[FromID(id).SMILES]++
	}
	// SMILES collisions are expected (fragment chains repeat) but the
	// generator must produce substantial diversity.
	if len(seen) < 300 {
		t.Fatalf("only %d distinct SMILES out of 500 molecules", len(seen))
	}
}

func TestDescriptorRanges(t *testing.T) {
	var mwSum float64
	n := 2000
	for id := uint64(0); id < uint64(n); id++ {
		m := FromID(id)
		d := m.Desc
		if d.MW <= 0 || d.MW > 1200 {
			t.Fatalf("mol %d: MW out of range: %v", id, d.MW)
		}
		if d.HeavyAtoms <= 0 || d.HeavyAtoms > 60 {
			t.Fatalf("mol %d: heavy atoms out of range: %d", id, d.HeavyAtoms)
		}
		if d.HBD < 0 || d.HBA < 0 || d.Rings < 0 || d.RotBonds < 0 {
			t.Fatalf("mol %d: negative descriptor %+v", id, d)
		}
		mwSum += d.MW
	}
	mean := mwSum / float64(n)
	// Drug-like mean MW should land in a plausible window.
	if mean < 150 || mean > 600 {
		t.Fatalf("mean MW = %v, outside drug-like window", mean)
	}
}

func TestLipinskiFractionReasonable(t *testing.T) {
	pass := 0
	n := 2000
	for id := uint64(0); id < uint64(n); id++ {
		if FromID(id).Lipinski() {
			pass++
		}
	}
	frac := float64(pass) / float64(n)
	if frac < 0.2 || frac > 0.99 {
		t.Fatalf("Lipinski pass fraction = %v, want a nontrivial mix", frac)
	}
}

func TestFeatureVectorShape(t *testing.T) {
	m := FromID(42)
	v := m.FeatureVector()
	if len(v) != FeatureDim {
		t.Fatalf("feature dim = %d, want %d", len(v), FeatureDim)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("feature %d is %v", i, x)
		}
	}
	// Fingerprint section must be 0/1.
	for i := 0; i < FingerprintBits; i++ {
		if v[i] != 0 && v[i] != 1 {
			t.Fatalf("fingerprint feature %d = %v", i, v[i])
		}
	}
}

func TestFingerprintNonEmpty(t *testing.T) {
	for id := uint64(0); id < 200; id++ {
		if FromID(id).FP().PopCount() == 0 {
			t.Fatalf("mol %d has empty fingerprint", id)
		}
	}
}

func TestTanimotoAxioms(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := FromID(x).FP(), FromID(y).FP()
		s := Tanimoto(a, b)
		if s < 0 || s > 1 {
			return false
		}
		if Tanimoto(a, b) != Tanimoto(b, a) {
			return false
		}
		return Tanimoto(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedFragmentsRaiseSimilarity(t *testing.T) {
	// Average similarity between random pairs vs pairs sharing a
	// fragment chain prefix should differ strongly.
	r := xrand.New(5)
	var randomSim float64
	const n = 300
	for i := 0; i < n; i++ {
		a, b := FromID(r.Uint64()), FromID(r.Uint64())
		randomSim += Tanimoto(a.FP(), b.FP())
	}
	randomSim /= n
	if randomSim > 0.8 {
		t.Fatalf("random pairs too similar on average: %v", randomSim)
	}
}

func TestConformerDeterministic(t *testing.T) {
	m := FromID(7)
	a, b := NewConformer(m), NewConformer(m)
	if len(a.Beads) != len(b.Beads) {
		t.Fatal("conformer bead counts differ")
	}
	for i := range a.Beads {
		if a.Beads[i] != b.Beads[i] {
			t.Fatalf("bead %d differs", i)
		}
	}
}

func TestConformerCentered(t *testing.T) {
	for id := uint64(0); id < 50; id++ {
		c := NewConformer(FromID(id))
		ctr := geom.Centroid(c.Positions())
		if ctr.Norm() > 1e-9 {
			t.Fatalf("mol %d conformer centroid = %v", id, ctr)
		}
	}
}

func TestConformerBeadCountMatchesDescriptor(t *testing.T) {
	for id := uint64(0); id < 100; id++ {
		m := FromID(id)
		c := NewConformer(m)
		// Conformer carries fragment beads only (no linker beads).
		want := 0
		for _, fi := range m.Fragments {
			want += len(fragments[fi].Beads)
		}
		if len(c.Beads) != want {
			t.Fatalf("mol %d: %d beads, want %d", id, len(c.Beads), want)
		}
	}
}

func TestApplyIdentityPose(t *testing.T) {
	c := NewConformer(FromID(3))
	got := c.Apply(geom.Vec3{}, geom.IdentityQuat(), make([]float64, c.NumTorsions()), nil)
	for i, p := range got {
		if p.Dist(c.Beads[i].Pos) > 1e-12 {
			t.Fatalf("identity pose moved bead %d", i)
		}
	}
}

func TestApplyTranslation(t *testing.T) {
	c := NewConformer(FromID(3))
	shift := geom.Vec3{X: 5, Y: -2, Z: 1}
	got := c.Apply(shift, geom.IdentityQuat(), nil, nil)
	for i, p := range got {
		if p.Dist(c.Beads[i].Pos.Add(shift)) > 1e-12 {
			t.Fatalf("translation wrong for bead %d", i)
		}
	}
}

func TestApplyTorsionPreservesBondLengths(t *testing.T) {
	// Torsion rotation is rigid within the moved group: inter-bead
	// distances inside the moved set and inside the fixed set must be
	// preserved.
	var c *Conformer
	for id := uint64(0); ; id++ {
		c = NewConformer(FromID(id))
		if c.NumTorsions() > 0 {
			break
		}
		if id > 200 {
			t.Skip("no torsional molecule found in first 200 IDs")
		}
	}
	angles := make([]float64, c.NumTorsions())
	angles[0] = 1.0
	got := c.Apply(geom.Vec3{}, geom.IdentityQuat(), angles, nil)
	tor := c.Torsions[0]
	for i := tor.Moved; i < len(got); i++ {
		for j := i + 1; j < len(got); j++ {
			before := c.Beads[i].Pos.Dist(c.Beads[j].Pos)
			after := got[i].Dist(got[j])
			if math.Abs(before-after) > 1e-9 {
				t.Fatalf("moved-group distance %d-%d changed: %v -> %v", i, j, before, after)
			}
		}
	}
	for i := 0; i < tor.Moved; i++ {
		if got[i].Dist(c.Beads[i].Pos) > 1e-12 {
			t.Fatalf("fixed bead %d moved under torsion", i)
		}
	}
}

func TestApplyReusesBuffer(t *testing.T) {
	c := NewConformer(FromID(9))
	buf := make([]geom.Vec3, 0, len(c.Beads)+10)
	got := c.Apply(geom.Vec3{}, geom.IdentityQuat(), nil, buf)
	if cap(got) != cap(buf) {
		t.Fatal("Apply did not reuse provided buffer")
	}
}

func TestLibraryDeterministicAndInRange(t *testing.T) {
	lib := NewLibrary("T", 1, 0, 100)
	if lib.Size() != 100 {
		t.Fatalf("size = %d", lib.Size())
	}
	if lib.IDAt(5) != lib.IDAt(5) {
		t.Fatal("IDAt not deterministic")
	}
	a, b := lib.At(10), lib.At(10)
	if a.SMILES != b.SMILES {
		t.Fatal("At not deterministic")
	}
}

func TestLibraryPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLibrary("T", 1, 0, 10).IDAt(10)
}

func TestStandardLibrariesOverlap(t *testing.T) {
	ozd, ord := StandardLibraries(7, 0.001)
	if ozd.Size() != 6500 || ord.Size() != 6500 {
		t.Fatalf("sizes = %d, %d", ozd.Size(), ord.Size())
	}
	ov := Overlap(ozd, ord)
	if ov != 1500 {
		t.Fatalf("overlap = %d, want 1500", ov)
	}
	// Shared universe indices yield identical molecule IDs.
	shared := map[uint64]bool{}
	for i := 0; i < ozd.Size(); i++ {
		shared[ozd.IDAt(i)] = true
	}
	hits := 0
	for i := 0; i < ord.Size(); i++ {
		if shared[ord.IDAt(i)] {
			hits++
		}
	}
	if hits != ov {
		t.Fatalf("actual shared IDs = %d, want %d", hits, ov)
	}
}

func TestOverlapDifferentUniverse(t *testing.T) {
	a := NewLibrary("A", 1, 0, 100)
	b := NewLibrary("B", 2, 0, 100)
	if Overlap(a, b) != 0 {
		t.Fatal("different universes should not overlap")
	}
}

func TestSampleDistinct(t *testing.T) {
	lib := NewLibrary("T", 3, 0, 1000)
	ids := lib.Sample(xrand.New(1), 100)
	seen := map[uint64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate in sample")
		}
		seen[id] = true
	}
	if len(ids) != 100 {
		t.Fatalf("sample size = %d", len(ids))
	}
}

func TestMaxMinDiverseProperties(t *testing.T) {
	r := xrand.New(11)
	mols := make([]*Molecule, 200)
	for i := range mols {
		mols[i] = FromID(r.Uint64())
	}
	sel := MaxMinDiverse(mols, 20, 0)
	if len(sel) != 20 {
		t.Fatalf("selected %d", len(sel))
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= len(mols) || seen[i] {
			t.Fatalf("bad selection index %d", i)
		}
		seen[i] = true
	}
	// Diversity of MaxMin picks should beat a random subset.
	pick := make([]*Molecule, 0, 20)
	for _, i := range sel {
		pick = append(pick, mols[i])
	}
	random := mols[:20]
	if MeanPairwiseDistance(pick) < MeanPairwiseDistance(random)*0.95 {
		t.Fatalf("MaxMin diversity %v not better than random %v",
			MeanPairwiseDistance(pick), MeanPairwiseDistance(random))
	}
}

func TestMaxMinDiverseEdgeCases(t *testing.T) {
	if got := MaxMinDiverse(nil, 5, 0); len(got) != 0 {
		t.Fatalf("empty input: %v", got)
	}
	mols := []*Molecule{FromID(1), FromID(2)}
	if got := MaxMinDiverse(mols, 5, 0); len(got) != 2 {
		t.Fatalf("k>n should return all: %v", got)
	}
}

func TestFragmentTableSane(t *testing.T) {
	if FragmentCount() < 20 {
		t.Fatalf("fragment alphabet too small: %d", FragmentCount())
	}
	for i := 0; i < FragmentCount(); i++ {
		f := FragmentByIndex(i)
		if f.Token == "" || f.MW <= 0 || len(f.Beads) == 0 || f.Weight <= 0 {
			t.Fatalf("fragment %d malformed: %+v", i, f)
		}
	}
}

func TestPharmaVariesAcrossMolecules(t *testing.T) {
	a, b := FromID(1).Pharma(), FromID(2).Pharma()
	if a == b {
		t.Fatal("pharmacophores identical for distinct molecules")
	}
}

func BenchmarkFromID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = FromID(uint64(i))
	}
}

func BenchmarkFingerprintTanimoto(b *testing.B) {
	x, y := FromID(1).FP(), FromID(2).FP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Tanimoto(x, y)
	}
}

func BenchmarkConformerApply(b *testing.B) {
	c := NewConformer(FromID(5))
	angles := make([]float64, c.NumTorsions())
	buf := make([]geom.Vec3, len(c.Beads))
	q := geom.AxisAngle(geom.Vec3{X: 1, Y: 1, Z: 0}, 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Apply(geom.Vec3{X: 1}, q, angles, buf)
	}
}

// TestFeatureVectorInto: the in-place featurizer must fully overwrite a
// dirty destination with exactly FeatureVector's output, and reject
// wrong-length buffers.
func TestFeatureVectorInto(t *testing.T) {
	m := FromID(424242)
	want := m.FeatureVector()
	dst := make([]float64, FeatureDim)
	for i := range dst {
		dst[i] = -7 // stale arena contents
	}
	m.FeatureVectorInto(dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("element %d: %v, want %v", i, dst[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FeatureVectorInto accepted a wrong-length buffer")
		}
	}()
	m.FeatureVectorInto(make([]float64, FeatureDim-1))
}
