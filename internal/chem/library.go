package chem

import "impeccable/internal/xrand"

// Library is a lazily generated compound library. Libraries index into a
// shared molecule "universe": molecule u of universe s has
// ID = hash(s, u), so two libraries over the same universe with
// overlapping index windows share exactly the molecules in the overlap —
// this models the paper's observation that the OZD (ZINC-derived) and ORD
// (MCULE-derived) 6.5 M-compound libraries overlap by ≈1.5 M compounds.
type Library struct {
	Name     string
	Universe uint64 // universe seed shared by related libraries
	Offset   uint64 // first universe index covered
	Count    int    // number of compounds
}

// NewLibrary creates a library covering universe indices
// [offset, offset+count).
func NewLibrary(name string, universe, offset uint64, count int) *Library {
	return &Library{Name: name, Universe: universe, Offset: offset, Count: count}
}

// Size returns the number of compounds in the library.
func (l *Library) Size() int { return l.Count }

// IDAt returns the molecule ID at library index i without materializing
// the molecule.
func (l *Library) IDAt(i int) uint64 {
	if i < 0 || i >= l.Count {
		panic("chem: library index out of range")
	}
	return moleculeID(l.Universe, l.Offset+uint64(i))
}

// At materializes the molecule at library index i.
func (l *Library) At(i int) *Molecule { return FromID(l.IDAt(i)) }

// moleculeID maps (universe, universeIndex) to a stable molecule ID.
func moleculeID(universe, u uint64) uint64 {
	r := xrand.NewFrom(universe, u)
	return r.Uint64()
}

// Overlap returns the number of compounds shared between two libraries of
// the same universe (zero for different universes).
func Overlap(a, b *Library) int {
	if a.Universe != b.Universe {
		return 0
	}
	lo := max(a.Offset, b.Offset)
	hi := min(a.Offset+uint64(a.Count), b.Offset+uint64(b.Count))
	if hi <= lo {
		return 0
	}
	return int(hi - lo)
}

// StandardLibraries builds the paper's two screening libraries at a given
// scale. scale=1.0 yields the paper's 6.5 M compounds per library with
// 1.5 M overlap; smaller scales shrink both proportionally (used for
// laptop-scale runs and tests). The universe seed pins molecule identity.
func StandardLibraries(universe uint64, scale float64) (ozd, ord *Library) {
	size := int(6_500_000 * scale)
	if size < 2 {
		size = 2
	}
	overlap := int(1_500_000 * scale)
	if overlap < 1 {
		overlap = 1
	}
	if overlap > size {
		overlap = size
	}
	ozd = NewLibrary("OZD", universe, 0, size)
	ord = NewLibrary("ORD", universe, uint64(size-overlap), size)
	return ozd, ord
}

// Sample returns k molecule IDs drawn uniformly without replacement from
// the library using the given RNG.
func (l *Library) Sample(r *xrand.RNG, k int) []uint64 {
	idx := r.SampleK(l.Count, k)
	ids := make([]uint64, len(idx))
	for i, j := range idx {
		ids[i] = l.IDAt(j)
	}
	return ids
}
