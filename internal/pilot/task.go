// Package pilot reimplements the RADICAL-Pilot runtime the paper builds
// on (§5.2.2): pilot jobs acquire a multi-node allocation from the batch
// system and then schedule and execute workloads of heterogeneous tasks —
// scalar, multi-core, single- and multi-GPU, single- and multi-node —
// directly on the acquired resources, without going back through the
// machine's batch scheduler.
//
// The package preserves RP's architecture at the fidelity the paper's
// results depend on: an Agent with a bin-packing Scheduler over node
// resources (cores × GPUs) and a pluggable Executor. The RealExecutor
// runs tasks as Go functions (laptop-scale campaigns); the SimExecutor
// completes tasks after their modeled duration on the discrete-event
// clock (Summit-scale campaigns, Fig. 7 and the §8 scaling claims).
package pilot

import "fmt"

// State is a task lifecycle state, mirroring RP's state model.
type State int

// Task states, in lifecycle order.
const (
	New State = iota
	Scheduled
	Executing
	Done
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case New:
		return "NEW"
	case Scheduled:
		return "SCHEDULED"
	case Executing:
		return "EXECUTING"
	case Done:
		return "DONE"
	case Failed:
		return "FAILED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Task is a stand-alone unit of execution with well-defined resource
// requirements (the paper's definition of task in §5.2.1).
type Task struct {
	ID   uint64
	Name string

	// Resource request: Nodes node-instances, each holding Cores cores
	// and GPUs GPUs. Nodes == 0 is treated as 1.
	Cores int
	GPUs  int
	Nodes int

	// Duration is the modeled runtime in seconds (used by SimExecutor).
	Duration float64
	// Fn is the actual work (used by RealExecutor; optional).
	Fn func()
	// OnDone, if set, is invoked after the task completes, before
	// dependent scheduling.
	OnDone func(*Task)

	// Flops and Component feed the hpc.FlopCounter.
	Flops     int64
	Component string

	// Err records an execution failure (e.g. a recovered panic in Fn);
	// a task with a non-nil Err finishes in state Failed.
	Err error

	// Runtime bookkeeping (set by the pilot).
	State      State
	SubmitTime float64
	StartTime  float64
	EndTime    float64
	placement  []int // node indices occupied
}

// nodesOrOne returns the node count, defaulting to 1.
func (t *Task) nodesOrOne() int {
	if t.Nodes <= 0 {
		return 1
	}
	return t.Nodes
}
