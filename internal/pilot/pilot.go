package pilot

import (
	"fmt"

	"sync"

	"impeccable/internal/hpc"
)

// Executor launches placed tasks and reports completion.
type Executor interface {
	// Launch starts t and arranges for done to be called exactly once
	// when it finishes.
	Launch(t *Task, done func())
}

// SimExecutor completes tasks after their modeled Duration on the
// simulation clock.
type SimExecutor struct{ Clock hpc.Clock }

// Launch implements Executor.
func (e *SimExecutor) Launch(t *Task, done func()) {
	e.Clock.After(t.Duration, done)
}

// RealExecutor runs each task's Fn on its own goroutine (RP isolates each
// task into a dedicated process; a goroutine is this runtime's unit of
// isolation). A panicking task is contained: it fails the task, not the
// agent.
type RealExecutor struct{}

// Launch implements Executor.
func (e *RealExecutor) Launch(t *Task, done func()) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				t.Err = fmt.Errorf("task %q panicked: %v", t.Name, r)
			}
			done()
		}()
		if t.Fn != nil {
			t.Fn()
		}
	}()
}

// UtilSample is one point of the Fig. 7 utilization time series.
type UtilSample struct {
	Time      float64
	BusyNodes int
	BusyCores int
	BusyGPUs  int
	Running   int
	Queued    int
}

// Pilot owns an allocation and executes submitted tasks on it, FIFO with
// backfilling (a queued task that fits runs even if an earlier one is
// still waiting for space — RP agent semantics).
type Pilot struct {
	Platform hpc.Platform
	Clock    hpc.Clock
	Exec     Executor
	Counter  *hpc.FlopCounter // optional

	mu       sync.Mutex
	cond     *sync.Cond
	sched    *Scheduler
	queue    []*Task
	running  int
	executed []*Task
	failed   []*Task
	trace    []UtilSample
	nextID   uint64
}

// NewPilot builds a pilot over an already-granted allocation.
func NewPilot(p hpc.Platform, clock hpc.Clock, exec Executor) *Pilot {
	pl := &Pilot{Platform: p, Clock: clock, Exec: exec, sched: NewScheduler(p)}
	pl.cond = sync.NewCond(&pl.mu)
	return pl
}

// Submit enqueues tasks and schedules whatever fits immediately.
func (p *Pilot) Submit(tasks ...*Task) {
	p.mu.Lock()
	now := p.Clock.Now()
	for _, t := range tasks {
		p.nextID++
		if t.ID == 0 {
			t.ID = p.nextID
		}
		t.State = New
		t.SubmitTime = now
		p.queue = append(p.queue, t)
	}
	fatals := p.schedule()
	p.sample()
	p.mu.Unlock()
	notifyFatals(fatals)
}

// notifyFatals delivers completion callbacks for unsatisfiable tasks.
// Callbacks run outside p.mu: they may resubmit to the pilot.
func notifyFatals(fatals []*Task) {
	for _, t := range fatals {
		if t.OnDone != nil {
			t.OnDone(t)
		}
	}
}

// schedule places queued tasks first-fit with backfilling, returning the
// tasks rejected as unsatisfiable so the caller can deliver their OnDone
// callbacks once p.mu is released (a fatal task "finishes" too — without
// the callback, a stage waiting on it would wait forever). Caller holds
// p.mu. A failed-shape memo keeps the pass O(queue) for homogeneous
// backlogs: once a (cores, gpus, nodes) request shape fails to place, all
// later tasks of the same shape are skipped without rescanning nodes —
// essential when hundreds of thousands of identical tasks queue behind a
// full allocation.
func (p *Pilot) schedule() (fatals []*Task) {
	type shape struct{ c, g, n int }
	failed := map[shape]bool{}
	remaining := p.queue[:0]
	for _, t := range p.queue {
		sh := shape{t.Cores, t.GPUs, t.nodesOrOne()}
		if failed[sh] {
			remaining = append(remaining, t)
			continue
		}
		_, ok, fatal := p.sched.TryPlace(t)
		if fatal {
			t.State = Failed
			t.EndTime = p.Clock.Now()
			if t.Err == nil {
				t.Err = fmt.Errorf("task %q unsatisfiable on platform %s",
					t.Name, p.Platform.Name)
			}
			p.failed = append(p.failed, t)
			fatals = append(fatals, t)
			continue
		}
		if !ok {
			failed[sh] = true
			remaining = append(remaining, t)
			continue
		}
		t.State = Executing
		t.StartTime = p.Clock.Now()
		p.running++
		task := t
		p.Exec.Launch(task, func() { p.onDone(task) })
	}
	p.queue = remaining
	return fatals
}

// onDone finalizes a completed task, frees its resources and reschedules.
func (p *Pilot) onDone(t *Task) {
	p.mu.Lock()
	t.EndTime = p.Clock.Now()
	p.sched.Release(t)
	p.running--
	if t.Err != nil {
		t.State = Failed
		p.failed = append(p.failed, t)
	} else {
		t.State = Done
		p.executed = append(p.executed, t)
		if p.Counter != nil && t.Component != "" {
			p.Counter.Add(t.Component, t.Flops, t.EndTime-t.StartTime, 1)
		}
	}
	cb := t.OnDone
	fatals := p.schedule()
	p.sample()
	p.cond.Broadcast()
	p.mu.Unlock()
	if cb != nil {
		cb(t)
	}
	notifyFatals(fatals)
}

// sample appends a utilization trace point. Caller holds p.mu.
func (p *Pilot) sample() {
	p.trace = append(p.trace, UtilSample{
		Time:      p.Clock.Now(),
		BusyNodes: p.sched.BusyNodes(),
		BusyCores: p.sched.BusyCores(),
		BusyGPUs:  p.sched.BusyGPUs(),
		Running:   p.running,
		Queued:    len(p.queue),
	})
}

// Wait blocks until no tasks are queued or running. With a SimExecutor,
// the caller must drive the SimClock from another goroutine — or use
// Drain for the common single-threaded pattern.
func (p *Pilot) Wait() {
	p.mu.Lock()
	for p.running > 0 || len(p.queue) > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Drain runs the simulation clock to quiescence (SimExecutor pattern) and
// returns the final simulated time.
func (p *Pilot) Drain(clock *hpc.SimClock) float64 {
	return clock.Run()
}

// Idle reports whether the pilot has no queued or running tasks.
func (p *Pilot) Idle() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running == 0 && len(p.queue) == 0
}

// Executed returns completed tasks in completion order.
func (p *Pilot) Executed() []*Task {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Task(nil), p.executed...)
}

// FailedTasks returns tasks rejected as unsatisfiable.
func (p *Pilot) FailedTasks() []*Task {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Task(nil), p.failed...)
}

// UtilizationTrace returns the recorded trace.
func (p *Pilot) UtilizationTrace() []UtilSample {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]UtilSample(nil), p.trace...)
}

// Oversubscribed exposes the scheduler invariant for tests.
func (p *Pilot) Oversubscribed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sched.Oversubscribed()
}
