package pilot

import "impeccable/internal/hpc"

// Scheduler bin-packs tasks onto the pilot's nodes. It tracks free cores
// and GPUs per node and places tasks first-fit from a rotating cursor
// (round-robin-ish, so long campaigns spread load instead of hammering
// node 0 — the same load-spreading concern §6.1.2 raises).
type Scheduler struct {
	spec      hpc.NodeSpec
	freeCores []int
	freeGPUs  []int
	cursor    int
	busyCores int
	busyGPUs  int
}

// NewScheduler builds a scheduler over the allocation.
func NewScheduler(p hpc.Platform) *Scheduler {
	s := &Scheduler{
		spec:      p.Spec,
		freeCores: make([]int, p.Nodes),
		freeGPUs:  make([]int, p.Nodes),
	}
	for i := range s.freeCores {
		s.freeCores[i] = p.Spec.Cores
		s.freeGPUs[i] = p.Spec.GPUs
	}
	return s
}

// Nodes returns the allocation size.
func (s *Scheduler) Nodes() int { return len(s.freeCores) }

// fits reports whether node i can hold one node-instance of t.
func (s *Scheduler) fits(i int, t *Task) bool {
	return s.freeCores[i] >= t.Cores && s.freeGPUs[i] >= t.GPUs
}

// TryPlace attempts to place t, returning the node indices used. Tasks
// too large for the allocation even when idle are rejected permanently
// (ok=false, fatal=true).
func (s *Scheduler) TryPlace(t *Task) (nodes []int, ok, fatal bool) {
	need := t.nodesOrOne()
	if need > s.Nodes() || t.Cores > s.spec.Cores || t.GPUs > s.spec.GPUs {
		return nil, false, true
	}
	n := s.Nodes()
	nodes = make([]int, 0, need)
	for probe := 0; probe < n && len(nodes) < need; probe++ {
		i := (s.cursor + probe) % n
		if s.fits(i, t) {
			nodes = append(nodes, i)
		}
	}
	if len(nodes) < need {
		return nil, false, false
	}
	for _, i := range nodes {
		s.freeCores[i] -= t.Cores
		s.freeGPUs[i] -= t.GPUs
	}
	s.busyCores += t.Cores * need
	s.busyGPUs += t.GPUs * need
	s.cursor = (nodes[len(nodes)-1] + 1) % n
	t.placement = nodes
	return nodes, true, false
}

// Release frees the resources held by t.
func (s *Scheduler) Release(t *Task) {
	for _, i := range t.placement {
		s.freeCores[i] += t.Cores
		s.freeGPUs[i] += t.GPUs
	}
	s.busyCores -= t.Cores * len(t.placement)
	s.busyGPUs -= t.GPUs * len(t.placement)
	t.placement = nil
}

// BusyCores returns the number of occupied cores.
func (s *Scheduler) BusyCores() int { return s.busyCores }

// BusyGPUs returns the number of occupied GPUs.
func (s *Scheduler) BusyGPUs() int { return s.busyGPUs }

// BusyNodes returns the number of nodes with any occupancy.
func (s *Scheduler) BusyNodes() int {
	n := 0
	for i := range s.freeCores {
		if s.freeCores[i] < s.spec.Cores || s.freeGPUs[i] < s.spec.GPUs {
			n++
		}
	}
	return n
}

// Oversubscribed reports whether any node's accounting went negative
// (used by property tests: must never happen).
func (s *Scheduler) Oversubscribed() bool {
	for i := range s.freeCores {
		if s.freeCores[i] < 0 || s.freeGPUs[i] < 0 ||
			s.freeCores[i] > s.spec.Cores || s.freeGPUs[i] > s.spec.GPUs {
			return true
		}
	}
	return false
}
