package pilot

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"impeccable/internal/hpc"
	"impeccable/internal/xrand"
)

func simPilot(nodes int) (*Pilot, *hpc.SimClock) {
	clk := hpc.NewSimClock()
	p := NewPilot(hpc.Summit().WithNodes(nodes), clk, &SimExecutor{Clock: clk})
	return p, clk
}

func TestSingleTaskLifecycle(t *testing.T) {
	p, clk := simPilot(1)
	task := &Task{Name: "t", Cores: 1, Duration: 10}
	p.Submit(task)
	clk.Run()
	if task.State != Done {
		t.Fatalf("state = %v", task.State)
	}
	if task.StartTime != 0 || task.EndTime != 10 {
		t.Fatalf("times = %v..%v", task.StartTime, task.EndTime)
	}
	if len(p.Executed()) != 1 {
		t.Fatal("executed list wrong")
	}
}

func TestConcurrencyBoundedByResources(t *testing.T) {
	// 10 one-GPU tasks on a 1-node (6 GPU) pilot: two waves of 6 and 4.
	p, clk := simPilot(1)
	tasks := make([]*Task, 10)
	for i := range tasks {
		tasks[i] = &Task{Cores: 1, GPUs: 1, Duration: 5}
	}
	p.Submit(tasks...)
	end := clk.Run()
	if end != 10 {
		t.Fatalf("makespan = %v, want 10 (two waves)", end)
	}
	started5 := 0
	for _, task := range tasks {
		if task.StartTime == 5 {
			started5++
		}
	}
	if started5 != 4 {
		t.Fatalf("second wave = %d tasks, want 4", started5)
	}
}

func TestPaperExample10000Tasks(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// §5.2.2: "given 10,000 single-node tasks and 1000 nodes, a pilot
	// system will execute 1000 tasks concurrently" — ten waves.
	p, clk := simPilot(1000)
	tasks := make([]*Task, 10000)
	for i := range tasks {
		tasks[i] = &Task{Cores: 42, GPUs: 6, Duration: 100}
	}
	p.Submit(tasks...)
	end := clk.Run()
	if end != 1000 {
		t.Fatalf("makespan = %v, want 1000 (10 waves × 100 s)", end)
	}
	if p.Oversubscribed() {
		t.Fatal("scheduler oversubscribed")
	}
}

func TestHeterogeneousMix(t *testing.T) {
	// GPU tasks and CPU tasks share nodes concurrently (RP feature 1:
	// concurrent heterogeneous tasks on the same pilot).
	p, clk := simPilot(2)
	mpi := &Task{Name: "mpi", Cores: 42, GPUs: 6, Nodes: 1, Duration: 10}
	gpu := &Task{Name: "gpu", Cores: 1, GPUs: 4, Duration: 10}
	cpu := &Task{Name: "cpu", Cores: 40, Duration: 10}
	p.Submit(mpi, gpu, cpu)
	clk.Run()
	// mpi fills node 0; gpu and cpu co-reside on node 1: all start at 0.
	for _, task := range []*Task{gpu, cpu, mpi} {
		if task.StartTime != 0 {
			t.Fatalf("%s started at %v, want 0", task.Name, task.StartTime)
		}
	}
}

func TestMultiNodeTask(t *testing.T) {
	p, clk := simPilot(4)
	mpi := &Task{Name: "mpi4", Cores: 42, GPUs: 6, Nodes: 4, Duration: 7}
	p.Submit(mpi)
	clk.Run()
	if mpi.State != Done {
		t.Fatalf("state = %v", mpi.State)
	}
	if got := clk.Now(); got != 7 {
		t.Fatalf("makespan = %v", got)
	}
}

func TestUnsatisfiableTaskFails(t *testing.T) {
	p, clk := simPilot(2)
	bad := &Task{Name: "too-big", Cores: 42, Nodes: 3, Duration: 1}
	good := &Task{Name: "ok", Cores: 1, Duration: 1}
	p.Submit(bad, good)
	clk.Run()
	if bad.State != Failed {
		t.Fatalf("oversized task state = %v", bad.State)
	}
	if good.State != Done {
		t.Fatalf("good task state = %v", good.State)
	}
	if len(p.FailedTasks()) != 1 {
		t.Fatal("failed list wrong")
	}
}

func TestBackfilling(t *testing.T) {
	// A large task blocks, but a small one behind it backfills.
	p, clk := simPilot(1)
	hog := &Task{Name: "hog", Cores: 42, Duration: 10}
	big := &Task{Name: "big", Cores: 42, Duration: 5}
	small := &Task{Name: "small", Cores: 0, GPUs: 1, Duration: 5}
	p.Submit(hog, big, small)
	clk.Run()
	if small.StartTime != 0 {
		t.Fatalf("small task did not backfill: start %v", small.StartTime)
	}
	if big.StartTime != 10 {
		t.Fatalf("big task start = %v", big.StartTime)
	}
}

func TestOnDoneCallback(t *testing.T) {
	p, clk := simPilot(1)
	var order []string
	a := &Task{Name: "a", Cores: 1, Duration: 3}
	a.OnDone = func(done *Task) {
		order = append(order, "a")
		p.Submit(&Task{Name: "b", Cores: 1, Duration: 2,
			OnDone: func(*Task) { order = append(order, "b") }})
	}
	p.Submit(a)
	clk.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("callback order = %v", order)
	}
	if clk.Now() != 5 {
		t.Fatalf("chained makespan = %v", clk.Now())
	}
}

func TestUtilizationTrace(t *testing.T) {
	p, clk := simPilot(2)
	tasks := make([]*Task, 4)
	for i := range tasks {
		tasks[i] = &Task{Cores: 42, GPUs: 6, Duration: 10}
	}
	p.Submit(tasks...)
	clk.Run()
	trace := p.UtilizationTrace()
	if len(trace) == 0 {
		t.Fatal("no trace recorded")
	}
	// At submit: 2 busy nodes, 2 queued.
	first := trace[0]
	if first.BusyNodes != 2 || first.Queued != 2 {
		t.Fatalf("first sample = %+v", first)
	}
	last := trace[len(trace)-1]
	if last.BusyNodes != 0 || last.Running != 0 || last.Queued != 0 {
		t.Fatalf("final sample = %+v", last)
	}
}

func TestFlopAccounting(t *testing.T) {
	p, clk := simPilot(1)
	fc := hpc.NewFlopCounter()
	p.Counter = fc
	p.Submit(&Task{Cores: 1, Duration: 4, Flops: 1000, Component: "S1"})
	clk.Run()
	got := fc.Get("S1")
	if got.Flops != 1000 || got.Seconds != 4 || got.Units != 1 {
		t.Fatalf("accounting = %+v", got)
	}
	if got.Rate != 250 {
		t.Fatalf("rate = %v", got.Rate)
	}
}

func TestRealExecutor(t *testing.T) {
	clk := hpc.NewRealClock()
	p := NewPilot(hpc.Summit().WithNodes(2), clk, &RealExecutor{})
	var ran atomic.Int64
	tasks := make([]*Task, 20)
	for i := range tasks {
		tasks[i] = &Task{Cores: 4, Fn: func() { ran.Add(1) }}
	}
	p.Submit(tasks...)
	p.Wait()
	if ran.Load() != 20 {
		t.Fatalf("ran = %d", ran.Load())
	}
	if !p.Idle() {
		t.Fatal("pilot not idle after Wait")
	}
}

func TestSchedulerNeverOversubscribes(t *testing.T) {
	// Property test: random task streams never violate node capacity.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		nodes := 1 + r.Intn(8)
		p, clk := simPilot(nodes)
		n := 5 + r.Intn(50)
		for i := 0; i < n; i++ {
			p.Submit(&Task{
				Cores:    r.Intn(43),
				GPUs:     r.Intn(7),
				Nodes:    1 + r.Intn(3),
				Duration: r.Range(0.1, 10),
			})
			if p.Oversubscribed() {
				return false
			}
		}
		clk.Run()
		return !p.Oversubscribed() && p.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	// Sequential sub-node tasks should not all land on node 0.
	p, clk := simPilot(4)
	tasks := make([]*Task, 4)
	for i := range tasks {
		tasks[i] = &Task{Cores: 1, Duration: 10}
	}
	p.Submit(tasks...)
	clk.RunUntil(1)
	nodes := map[int]bool{}
	for _, task := range tasks {
		if len(task.placement) == 1 {
			nodes[task.placement[0]] = true
		}
	}
	if len(nodes) < 2 {
		t.Fatalf("all tasks packed onto %d node(s)", len(nodes))
	}
	clk.Run()
}

func BenchmarkSubmitScheduleDrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, clk := simPilot(64)
		tasks := make([]*Task, 1000)
		for j := range tasks {
			tasks[j] = &Task{Cores: 7, GPUs: 1, Duration: 1}
		}
		p.Submit(tasks...)
		clk.Run()
	}
}

func TestPanickingTaskContained(t *testing.T) {
	clk := hpc.NewRealClock()
	p := NewPilot(hpc.Summit().WithNodes(1), clk, &RealExecutor{})
	bad := &Task{Name: "boom", Cores: 1, Fn: func() { panic("kaboom") }}
	var ran atomic.Int64
	good := &Task{Name: "ok", Cores: 1, Fn: func() { ran.Add(1) }}
	p.Submit(bad, good)
	p.Wait()
	if bad.State != Failed || bad.Err == nil {
		t.Fatalf("panicking task state = %v, err = %v", bad.State, bad.Err)
	}
	if good.State != Done || ran.Load() != 1 {
		t.Fatalf("good task affected: %v", good.State)
	}
	if len(p.FailedTasks()) != 1 || len(p.Executed()) != 1 {
		t.Fatal("bookkeeping wrong after panic")
	}
	if p.Oversubscribed() {
		t.Fatal("resources leaked after panic")
	}
}
