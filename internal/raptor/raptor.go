// Package raptor reimplements the RAdical-Pilot Task OveRlay (§6.1.2,
// Fig. 3): a master/worker layer on top of the pilot abstraction built
// for the docking stage's scale — millions of function-call-sized tasks
// whose individual durations (milliseconds to seconds, with a long tail
// across receptors) are far below what per-task pilot scheduling can
// sustain.
//
// The load-balancing mechanics follow the paper exactly:
//
//   - tasks are communicated in bulks to limit communication load and
//     frequency;
//   - multiple masters limit the number of workers served by each master,
//     avoiding master bottlenecks;
//   - dynamic load distribution sends each bulk to the least-loaded
//     worker, with a bounded prefetch window per worker so the long tail
//     does not strand work behind a slow compound.
//
// The overlay runs in simulated time (durations + DES clock: the §8
// "40 M docks/hour on 4000 nodes" reproduction) or in real time (Go
// functions on goroutine worker pools).
package raptor

import (
	"sort"
	"sync"

	"impeccable/internal/hpc"
	"impeccable/internal/xrand"
)

// Config sizes the overlay.
type Config struct {
	Masters        int     // number of master processes
	Workers        int     // total workers (assigned round-robin to masters)
	SlotsPerWorker int     // concurrent calls per worker (≈ GPUs per node)
	BulkSize       int     // calls per dispatch bulk
	CommLatency    float64 // per-bulk communication latency (s)
	CommPerItem    float64 // per-item marshalling cost (s)
	MasterOverhead float64 // master-side dispatch bookkeeping per bulk (s)
	Prefetch       int     // outstanding window per worker, in multiples of slots

	// Fault injection (§6.1.1 builds the inference setup to be
	// "resilient against sporadic IO errors"; at campaign scale worker
	// loss is routine). FailureProb is the per-call probability that the
	// executing worker crashes; its outstanding work returns to the
	// master's backlog and the worker rejoins after RestartDelay.
	FailureProb  float64
	RestartDelay float64
	FailureSeed  uint64
}

// DefaultConfig returns a Summit-like sizing: one master per 100 workers,
// six slots per worker (one per GPU), bulks of 512.
func DefaultConfig(workers int) Config {
	masters := workers / 100
	if masters < 1 {
		masters = 1
	}
	return Config{
		Masters:        masters,
		Workers:        workers,
		SlotsPerWorker: 6,
		BulkSize:       512,
		CommLatency:    0.010,
		CommPerItem:    0.00001,
		MasterOverhead: 0.002,
		Prefetch:       3,
	}
}

// Stats summarizes an overlay run.
type Stats struct {
	Calls      int
	Start, End float64
	Throughput float64   // calls per second
	Dispatched []int     // per-master dispatched call counts
	WorkerBusy []float64 // per-worker busy seconds
	Bulks      int       // total bulks sent
	Failures   int       // worker crashes survived
	Requeued   int       // calls re-dispatched after a crash
}

// Utilization returns mean worker busy fraction over the run.
func (s Stats) Utilization(slotsPerWorker int) float64 {
	if s.End <= s.Start || len(s.WorkerBusy) == 0 {
		return 0
	}
	span := s.End - s.Start
	var busy float64
	for _, b := range s.WorkerBusy {
		busy += b
	}
	return busy / (span * float64(len(s.WorkerBusy)) * float64(slotsPerWorker))
}

// simWorker is a worker's simulation state.
type simWorker struct {
	id          int
	outstanding int // calls delivered but not completed
	active      int // calls currently in a slot
	queue       []float64
	busySeconds float64
	dead        bool
	gen         int             // incremented on crash; stale events check it
	inFlight    map[int]float64 // active call id → duration (for requeue)
	nextCall    int
}

// simMaster owns a partition of the backlog and a set of workers.
type simMaster struct {
	id         int
	backlog    []float64 // durations yet to dispatch
	workers    []*simWorker
	busy       bool // dispatching a bulk
	dispatched int
	bulks      int
}

// Overlay executes function-call workloads over a master/worker tree.
type Overlay struct {
	Clock hpc.Clock
	Cfg   Config

	mu        sync.Mutex
	masters   []*simMaster
	workers   []*simWorker
	completed int
	total     int
	endTime   float64
	rng       *xrand.RNG
	failures  int
	requeued  int
}

// New builds an overlay on the given clock.
func New(clock hpc.Clock, cfg Config) *Overlay {
	if cfg.Masters < 1 {
		cfg.Masters = 1
	}
	if cfg.SlotsPerWorker < 1 {
		cfg.SlotsPerWorker = 1
	}
	if cfg.BulkSize < 1 {
		cfg.BulkSize = 1
	}
	if cfg.Prefetch < 1 {
		cfg.Prefetch = 1
	}
	return &Overlay{Clock: clock, Cfg: cfg}
}

// RunSim executes a workload of modeled call durations to completion on a
// SimClock and returns the statistics. The caller must pass the same
// clock instance used at construction.
func (o *Overlay) RunSim(durations []float64, clk *hpc.SimClock) Stats {
	o.mu.Lock()
	o.total = len(durations)
	o.completed = 0
	o.failures = 0
	o.requeued = 0
	o.rng = xrand.New(o.Cfg.FailureSeed ^ 0xFA11)
	o.workers = make([]*simWorker, o.Cfg.Workers)
	for i := range o.workers {
		o.workers[i] = &simWorker{id: i, inFlight: map[int]float64{}}
	}
	o.masters = make([]*simMaster, o.Cfg.Masters)
	for i := range o.masters {
		o.masters[i] = &simMaster{id: i}
	}
	// Round-robin worker assignment and backlog partition (§6.1.2:
	// iterate compounds round-robin).
	for i, w := range o.workers {
		m := o.masters[i%o.Cfg.Masters]
		m.workers = append(m.workers, w)
	}
	for i, d := range durations {
		m := o.masters[i%o.Cfg.Masters]
		m.backlog = append(m.backlog, d)
	}
	start := o.Clock.Now()
	for _, m := range o.masters {
		o.tryDispatch(m)
	}
	o.mu.Unlock()

	clk.Run()

	o.mu.Lock()
	defer o.mu.Unlock()
	st := Stats{
		Calls: o.total,
		Start: start,
		End:   o.endTime,
	}
	if st.End > st.Start {
		st.Throughput = float64(st.Calls) / (st.End - st.Start)
	}
	for _, m := range o.masters {
		st.Dispatched = append(st.Dispatched, m.dispatched)
		st.Bulks += m.bulks
	}
	for _, w := range o.workers {
		st.WorkerBusy = append(st.WorkerBusy, w.busySeconds)
	}
	st.Failures = o.failures
	st.Requeued = o.requeued
	return st
}

// tryDispatch sends bulks from m's backlog while it is free and some
// worker has prefetch-window headroom. Caller holds o.mu.
func (o *Overlay) tryDispatch(m *simMaster) {
	if m.busy || len(m.backlog) == 0 || len(m.workers) == 0 {
		return
	}
	window := o.Cfg.Prefetch * o.Cfg.SlotsPerWorker
	// Refill hysteresis: only send to a worker with at least half a
	// window of headroom, so bulks stay near BulkSize instead of
	// degrading to single-call trickles once the pipeline is primed
	// (§6.1.2 mechanism i: bulk communication limits message frequency).
	minHeadroom := window / 2
	if minHeadroom < 1 {
		minHeadroom = 1
	}
	if o.Cfg.BulkSize < minHeadroom {
		minHeadroom = o.Cfg.BulkSize
	}
	// Least-loaded live worker with sufficient headroom.
	var w *simWorker
	for _, cand := range m.workers {
		if cand.dead || window-cand.outstanding < minHeadroom {
			continue
		}
		if w == nil || cand.outstanding < w.outstanding {
			w = cand
		}
	}
	if w == nil {
		return // all workers saturated; a completion will retrigger
	}
	n := o.Cfg.BulkSize
	if headroom := window - w.outstanding; n > headroom {
		n = headroom
	}
	if n > len(m.backlog) {
		n = len(m.backlog)
	}
	bulk := append([]float64(nil), m.backlog[:n]...)
	m.backlog = m.backlog[n:]
	w.outstanding += n
	m.dispatched += n
	m.bulks++
	m.busy = true

	// Master-side bookkeeping occupies the master; communication then
	// delivers the bulk to the worker.
	commDelay := o.Cfg.CommLatency + o.Cfg.CommPerItem*float64(n)
	worker := w
	o.Clock.After(o.Cfg.MasterOverhead, func() {
		o.mu.Lock()
		m.busy = false
		o.tryDispatch(m)
		o.mu.Unlock()
	})
	o.Clock.After(o.Cfg.MasterOverhead+commDelay, func() {
		o.mu.Lock()
		if worker.dead {
			// The worker crashed while the bulk was in flight: bounce
			// it straight back to the master.
			worker.outstanding -= len(bulk)
			m.backlog = append(m.backlog, bulk...)
			o.requeued += len(bulk)
			o.tryDispatch(m)
			o.mu.Unlock()
			return
		}
		worker.queue = append(worker.queue, bulk...)
		o.fillSlots(m, worker)
		o.mu.Unlock()
	})
}

// fillSlots starts queued calls while the worker has free slots. Caller
// holds o.mu.
func (o *Overlay) fillSlots(m *simMaster, w *simWorker) {
	for !w.dead && w.active < o.Cfg.SlotsPerWorker && len(w.queue) > 0 {
		d := w.queue[0]
		w.queue = w.queue[1:]
		w.active++
		w.busySeconds += d
		id := w.nextCall
		w.nextCall++
		w.inFlight[id] = d
		gen := w.gen
		o.Clock.After(d, func() {
			o.mu.Lock()
			if w.gen != gen {
				// Stale completion from before a crash; the call was
				// already requeued.
				o.mu.Unlock()
				return
			}
			delete(w.inFlight, id)
			w.active--
			w.outstanding--
			o.completed++
			if o.completed == o.total {
				o.endTime = o.Clock.Now()
			}
			if o.Cfg.FailureProb > 0 && o.rng.Bool(o.Cfg.FailureProb) {
				o.crash(m, w)
			} else {
				o.fillSlots(m, w)
			}
			o.tryDispatch(m)
			o.mu.Unlock()
		})
	}
}

// crash kills a worker: every queued and in-flight call returns to the
// master backlog and the worker rejoins after RestartDelay. Caller holds
// o.mu.
func (o *Overlay) crash(m *simMaster, w *simWorker) {
	o.failures++
	w.dead = true
	w.gen++
	lost := len(w.queue) + len(w.inFlight)
	m.backlog = append(m.backlog, w.queue...)
	// Deterministic requeue order (map iteration order is randomized).
	ids := make([]int, 0, len(w.inFlight))
	for id := range w.inFlight {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		m.backlog = append(m.backlog, w.inFlight[id])
	}
	o.requeued += lost
	w.queue = nil
	w.inFlight = map[int]float64{}
	w.outstanding -= lost
	w.active = 0
	delay := o.Cfg.RestartDelay
	if delay <= 0 {
		delay = 1
	}
	o.Clock.After(delay, func() {
		o.mu.Lock()
		w.dead = false
		o.tryDispatch(m)
		o.mu.Unlock()
	})
}

// RunReal executes real function calls over goroutine worker pools with
// the same master/bulk structure, returning wall-clock statistics.
func (o *Overlay) RunReal(fns []func()) Stats {
	start := o.Clock.Now()
	type bulk struct{ fns []func() }
	var wg sync.WaitGroup
	dispatched := make([]int, o.Cfg.Masters)
	var bulkCount int
	var bulkMu sync.Mutex

	// Partition across masters round-robin.
	partitions := make([][]func(), o.Cfg.Masters)
	for i, fn := range fns {
		m := i % o.Cfg.Masters
		partitions[m] = append(partitions[m], fn)
		dispatched[m]++
	}
	workersPerMaster := o.Cfg.Workers / o.Cfg.Masters
	if workersPerMaster < 1 {
		workersPerMaster = 1
	}
	for mi := 0; mi < o.Cfg.Masters; mi++ {
		work := partitions[mi]
		ch := make(chan bulk)
		for w := 0; w < workersPerMaster; w++ {
			for s := 0; s < o.Cfg.SlotsPerWorker; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for b := range ch {
						for _, fn := range b.fns {
							fn()
						}
					}
				}()
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for at := 0; at < len(work); at += o.Cfg.BulkSize {
				end := at + o.Cfg.BulkSize
				if end > len(work) {
					end = len(work)
				}
				ch <- bulk{fns: work[at:end]}
				bulkMu.Lock()
				bulkCount++
				bulkMu.Unlock()
			}
			close(ch)
		}()
	}
	wg.Wait()
	endT := o.Clock.Now()
	st := Stats{
		Calls:      len(fns),
		Start:      start,
		End:        endT,
		Dispatched: dispatched,
		Bulks:      bulkCount,
	}
	if endT > start {
		st.Throughput = float64(len(fns)) / (endT - start)
	}
	return st
}
