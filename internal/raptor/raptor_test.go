package raptor

import (
	"math"
	"sync/atomic"
	"testing"

	"impeccable/internal/hpc"
	"impeccable/internal/xrand"
)

// dockDurations samples per-call docking durations with the long tail
// §6.1.2 describes (lognormal-ish around mean).
func dockDurations(n int, mean float64, seed uint64) []float64 {
	r := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = mean * math.Exp(r.Norm(0, 0.5)) / math.Exp(0.125)
	}
	return out
}

func TestRunSimCompletesAll(t *testing.T) {
	clk := hpc.NewSimClock()
	cfg := DefaultConfig(10)
	o := New(clk, cfg)
	durs := dockDurations(5000, 0.4, 1)
	st := o.RunSim(durs, clk)
	if st.Calls != 5000 {
		t.Fatalf("calls = %d", st.Calls)
	}
	if st.End <= st.Start || st.Throughput <= 0 {
		t.Fatalf("stats malformed: %+v", st)
	}
	total := 0
	for _, d := range st.Dispatched {
		total += d
	}
	if total != 5000 {
		t.Fatalf("dispatched total = %d", total)
	}
	if st.Bulks <= 0 {
		t.Fatal("no bulks recorded")
	}
}

func TestThroughputBoundedByCapacity(t *testing.T) {
	// Throughput cannot exceed workers × slots / meanDuration; with high
	// utilization it should approach it.
	clk := hpc.NewSimClock()
	cfg := DefaultConfig(20)
	o := New(clk, cfg)
	mean := 0.4
	st := o.RunSim(dockDurations(20000, mean, 2), clk)
	capacity := float64(cfg.Workers*cfg.SlotsPerWorker) / mean
	if st.Throughput > capacity*1.05 {
		t.Fatalf("throughput %v exceeds capacity %v", st.Throughput, capacity)
	}
	if st.Throughput < capacity*0.6 {
		t.Fatalf("throughput %v below 60%% of capacity %v (poor load balance)",
			st.Throughput, capacity)
	}
	t.Logf("throughput %.0f calls/s of capacity %.0f (%.0f%%)",
		st.Throughput, capacity, 100*st.Throughput/capacity)
}

func TestNearLinearScaling(t *testing.T) {
	// §6.1.2: near-linear scaling to thousands of nodes. Throughput at
	// 8× workers must be at least 6× the 1× throughput (callsPerWorker
	// held constant).
	mean := 0.4
	through := func(workers int) float64 {
		clk := hpc.NewSimClock()
		cfg := DefaultConfig(workers)
		o := New(clk, cfg)
		n := workers * 600
		return o.RunSim(dockDurations(n, mean, 3), clk).Throughput
	}
	t1 := through(16)
	t8 := through(128)
	if t8 < 6*t1 {
		t.Fatalf("scaling broke: 16 workers %.0f/s, 128 workers %.0f/s (%.1fx)",
			t1, t8, t8/t1)
	}
	t.Logf("16 workers %.0f/s → 128 workers %.0f/s (%.2fx over 8x resources)", t1, t8, t8/t1)
}

func TestMultipleMastersRelieveBottleneck(t *testing.T) {
	// With master overhead inflated, a single master saturates; adding
	// masters must raise throughput (§6.1.2 mechanism ii).
	mean := 0.05
	run := func(masters int) float64 {
		clk := hpc.NewSimClock()
		cfg := DefaultConfig(100)
		cfg.Masters = masters
		cfg.BulkSize = 16
		cfg.MasterOverhead = 0.01 // deliberately expensive dispatch
		o := New(clk, cfg)
		return o.RunSim(dockDurations(40000, mean, 4), clk).Throughput
	}
	one := run(1)
	four := run(4)
	if four < 1.5*one {
		t.Fatalf("extra masters did not help: 1 master %.0f/s, 4 masters %.0f/s", one, four)
	}
	t.Logf("1 master %.0f/s → 4 masters %.0f/s", one, four)
}

func TestBulkingLimitsCommunicationEvents(t *testing.T) {
	clk := hpc.NewSimClock()
	cfg := DefaultConfig(10)
	cfg.BulkSize = 500
	o := New(clk, cfg)
	st := o.RunSim(dockDurations(10000, 0.2, 5), clk)
	// Bulks should be far fewer than calls. The prefetch window bounds
	// bulk size too, so allow generous slack.
	if st.Bulks > st.Calls/5 {
		t.Fatalf("bulking ineffective: %d bulks for %d calls", st.Bulks, st.Calls)
	}
}

func TestLongTailLoadBalance(t *testing.T) {
	// A heavy-tailed workload must still keep workers' busy time
	// balanced (§6.1.2: the long tail poses a load-balancing challenge
	// solved by dynamic distribution).
	clk := hpc.NewSimClock()
	cfg := DefaultConfig(16)
	cfg.BulkSize = 8 // small bulks so balancing is dynamic
	o := New(clk, cfg)
	r := xrand.New(6)
	durs := make([]float64, 20000)
	for i := range durs {
		if r.Bool(0.05) {
			durs[i] = 5 // 100× the typical call
		} else {
			durs[i] = 0.05
		}
	}
	st := o.RunSim(durs, clk)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range st.WorkerBusy {
		lo, hi = math.Min(lo, b), math.Max(hi, b)
	}
	if hi > 2.0*lo {
		t.Fatalf("imbalanced busy times: min %.1f s, max %.1f s", lo, hi)
	}
}

func TestUtilizationMetric(t *testing.T) {
	clk := hpc.NewSimClock()
	cfg := DefaultConfig(8)
	o := New(clk, cfg)
	st := o.RunSim(dockDurations(10000, 0.3, 7), clk)
	u := st.Utilization(cfg.SlotsPerWorker)
	if u <= 0 || u > 1.0001 {
		t.Fatalf("utilization = %v", u)
	}
	if u < 0.5 {
		t.Fatalf("utilization %v too low for a saturated run", u)
	}
}

func TestDeterministicSim(t *testing.T) {
	run := func() Stats {
		clk := hpc.NewSimClock()
		o := New(clk, DefaultConfig(10))
		return o.RunSim(dockDurations(3000, 0.3, 8), clk)
	}
	a, b := run(), run()
	if a.End != b.End || a.Throughput != b.Throughput || a.Bulks != b.Bulks {
		t.Fatalf("sim not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunReal(t *testing.T) {
	clk := hpc.NewRealClock()
	cfg := DefaultConfig(4)
	cfg.Masters = 2
	cfg.SlotsPerWorker = 2
	cfg.BulkSize = 16
	o := New(clk, cfg)
	var ran atomic.Int64
	fns := make([]func(), 1000)
	for i := range fns {
		fns[i] = func() { ran.Add(1) }
	}
	st := o.RunReal(fns)
	if ran.Load() != 1000 {
		t.Fatalf("ran = %d", ran.Load())
	}
	if st.Calls != 1000 || st.Bulks == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailureRecoveryCompletesAll(t *testing.T) {
	// Workers crash at a 1 % per-call rate; every call must still
	// complete exactly once (no losses, no phantom completions).
	clk := hpc.NewSimClock()
	cfg := DefaultConfig(12)
	cfg.FailureProb = 0.01
	cfg.RestartDelay = 2
	cfg.FailureSeed = 3
	o := New(clk, cfg)
	st := o.RunSim(dockDurations(8000, 0.2, 9), clk)
	if st.Calls != 8000 {
		t.Fatalf("calls = %d", st.Calls)
	}
	if st.Failures == 0 {
		t.Fatal("no failures injected at 1% rate over 8000 calls")
	}
	if st.Requeued == 0 {
		t.Fatal("failures occurred but nothing was requeued")
	}
	if st.End <= st.Start {
		t.Fatal("run did not finish")
	}
	t.Logf("survived %d worker crashes, requeued %d calls, throughput %.0f/s",
		st.Failures, st.Requeued, st.Throughput)
}

func TestFailureThroughputDegradesGracefully(t *testing.T) {
	run := func(p float64) float64 {
		clk := hpc.NewSimClock()
		cfg := DefaultConfig(16)
		cfg.FailureProb = p
		cfg.RestartDelay = 5
		o := New(clk, cfg)
		return o.RunSim(dockDurations(10000, 0.2, 10), clk).Throughput
	}
	clean := run(0)
	mild := run(0.002)
	heavy := run(0.02)
	if mild >= clean || heavy >= mild {
		t.Fatalf("throughput not monotone in failure rate: %v, %v, %v", clean, mild, heavy)
	}
	// A 0.2 % per-call crash rate (one crash per worker per ~500 calls)
	// must cost only a modest fraction of throughput.
	if mild < 0.7*clean {
		t.Fatalf("0.2%% failures cost too much: %v vs %v", mild, clean)
	}
	t.Logf("throughput: clean %.0f/s, 0.2%% failures %.0f/s, 2%% failures %.0f/s",
		clean, mild, heavy)
}

func TestFailureDeterministic(t *testing.T) {
	run := func() Stats {
		clk := hpc.NewSimClock()
		cfg := DefaultConfig(8)
		cfg.FailureProb = 0.02
		cfg.FailureSeed = 7
		o := New(clk, cfg)
		return o.RunSim(dockDurations(3000, 0.2, 11), clk)
	}
	a, b := run(), run()
	if a.Failures != b.Failures || a.End != b.End || a.Requeued != b.Requeued {
		t.Fatalf("fault injection not deterministic: %+v vs %+v", a, b)
	}
}

func TestEmptyWorkload(t *testing.T) {
	clk := hpc.NewSimClock()
	o := New(clk, DefaultConfig(4))
	st := o.RunSim(nil, clk)
	if st.Calls != 0 || st.Throughput != 0 {
		t.Fatalf("empty workload stats = %+v", st)
	}
}

func BenchmarkSimDispatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clk := hpc.NewSimClock()
		o := New(clk, DefaultConfig(32))
		o.RunSim(dockDurations(10000, 0.3, 1), clk)
	}
}
