package dock

import (
	"math"

	"impeccable/internal/xrand"
)

// LocalSearch is a pluggable pose refiner used inside the Lamarckian GA.
// Implementations improve the genome in place and return the refined
// energy.
type LocalSearch interface {
	// Refine improves genome g (modified in place) for at most maxIters
	// iterations, returning the best energy found. The incoming energy
	// of g is passed so implementations can avoid a redundant
	// evaluation.
	Refine(s *ScoreFunc, g []float64, energy float64, maxIters int, r *xrand.RNG) float64
	// Name identifies the method in reports ("solis-wets", "adadelta").
	Name() string
}

// SolisWets is the legacy AutoDock local search: an adaptive random walk
// with a success-biased drift vector and an expanding/contracting step
// size (Solis & Wets, Math. Oper. Res. 1981).
type SolisWets struct {
	InitialRho  float64 // initial step scale (genome units)
	SuccessGate int     // consecutive successes before expansion
	FailureGate int     // consecutive failures before contraction
	MinRho      float64 // termination threshold
}

// NewSolisWets returns the AutoDock-flavored default configuration.
func NewSolisWets() *SolisWets {
	return &SolisWets{InitialRho: 0.3, SuccessGate: 4, FailureGate: 4, MinRho: 1e-3}
}

// Name implements LocalSearch.
func (sw *SolisWets) Name() string { return "solis-wets" }

// Refine implements LocalSearch.
func (sw *SolisWets) Refine(s *ScoreFunc, g []float64, energy float64, maxIters int, r *xrand.RNG) float64 {
	n := len(g)
	rho := sw.InitialRho
	bias := make([]float64, n)
	cand := make([]float64, n)
	succ, fail := 0, 0
	best := energy
	for it := 0; it < maxIters && rho > sw.MinRho; it++ {
		// Forward probe: g + bias + N(0, rho).
		var delta = make([]float64, n)
		for k := 0; k < n; k++ {
			delta[k] = bias[k] + r.Norm(0, rho)
			cand[k] = g[k] + delta[k]
		}
		e := s.Score(cand)
		if e < best {
			copy(g, cand)
			best = e
			for k := 0; k < n; k++ {
				bias[k] = 0.2*bias[k] + 0.4*delta[k]
			}
			succ, fail = succ+1, 0
		} else {
			// Reverse probe: g - bias - delta.
			for k := 0; k < n; k++ {
				cand[k] = g[k] - delta[k]
			}
			e2 := s.Score(cand)
			if e2 < best {
				copy(g, cand)
				best = e2
				for k := 0; k < n; k++ {
					bias[k] = bias[k] - 0.4*delta[k]
				}
				succ, fail = succ+1, 0
			} else {
				for k := 0; k < n; k++ {
					bias[k] *= 0.5
				}
				succ, fail = 0, fail+1
			}
		}
		if succ >= sw.SuccessGate {
			rho *= 2
			succ = 0
		}
		if fail >= sw.FailureGate {
			rho *= 0.5
			fail = 0
		}
	}
	return best
}

// ADADELTA is the gradient-based local search AutoDock-GPU added (§5.1.1):
// the ADADELTA adaptive step rule (Zeiler 2012) applied to the pose
// gradient, which the paper credits with significantly better docked
// poses/scores than Solis-Wets.
type ADADELTA struct {
	Rho float64 // decay of the squared-gradient / squared-update averages
	Eps float64 // numerical floor
}

// NewADADELTA returns the standard configuration (ρ=0.8, ε=1e-6, matching
// common AutoDock-GPU settings).
func NewADADELTA() *ADADELTA { return &ADADELTA{Rho: 0.8, Eps: 1e-6} }

// Name implements LocalSearch.
func (ad *ADADELTA) Name() string { return "adadelta" }

// Refine implements LocalSearch.
func (ad *ADADELTA) Refine(s *ScoreFunc, g []float64, energy float64, maxIters int, r *xrand.RNG) float64 {
	n := len(g)
	grad := make([]float64, n)
	eg2 := make([]float64, n) // running avg of squared gradients
	ex2 := make([]float64, n) // running avg of squared updates
	// Warm-start the update average so the first steps move at a
	// physically meaningful scale (~0.1 genome units) instead of √ε.
	for k := range ex2 {
		ex2[k] = 0.01
	}
	cand := make([]float64, n)
	bestG := make([]float64, n)
	copy(cand, g)
	copy(bestG, g)
	best := energy
	for it := 0; it < maxIters; it++ {
		s.Gradient(cand, grad)
		for k := 0; k < n; k++ {
			eg2[k] = ad.Rho*eg2[k] + (1-ad.Rho)*grad[k]*grad[k]
			dx := -math.Sqrt(ex2[k]+ad.Eps) / math.Sqrt(eg2[k]+ad.Eps) * grad[k]
			ex2[k] = ad.Rho*ex2[k] + (1-ad.Rho)*dx*dx
			cand[k] += dx
		}
		if e := s.Score(cand); e < best {
			best = e
			copy(bestG, cand)
		}
	}
	copy(g, bestG)
	return best
}
