package dock

import (
	"math"
	"sort"

	"impeccable/internal/geom"
	"impeccable/internal/xrand"
)

// Params configures a Lamarckian-GA docking run. The defaults are scaled
// down from AutoDock-GPU's (population 150, 2.5 M evaluations) to keep a
// single dock at the 10⁻⁴-node-hour scale of the paper's Table 2 relative
// to the other stages.
type Params struct {
	Population  int         // GA population size
	Generations int         // GA generations per run
	Runs        int         // independent LGA runs; best pose wins
	Elitism     int         // top genomes copied unchanged
	MutRate     float64     // per-gene mutation probability
	MutSigma    float64     // mutation step (genome units)
	CrossRate   float64     // two-parent crossover probability
	LSProb      float64     // fraction of population refined per generation
	LSIters     int         // local-search iterations per refinement
	Local       LocalSearch // Solis-Wets (default) or ADADELTA
	TournamentK int         // tournament selection size
}

// DefaultParams returns the standard throughput-oriented configuration
// with Solis-Wets local search.
func DefaultParams() Params {
	return Params{
		Population:  40,
		Generations: 25,
		Runs:        4,
		Elitism:     2,
		MutRate:     0.08,
		MutSigma:    0.35,
		CrossRate:   0.8,
		LSProb:      0.25,
		LSIters:     25,
		Local:       NewSolisWets(),
		TournamentK: 3,
	}
}

// QualityParams returns the ADADELTA configuration the paper credits with
// significantly better docking quality (§5.1.1) at higher per-ligand cost.
func QualityParams() Params {
	p := DefaultParams()
	p.Local = NewADADELTA()
	p.LSIters = 30 // each ADADELTA iter costs a full numerical gradient
	p.LSProb = 0.2
	return p
}

// Result is the outcome of docking one ligand.
type Result struct {
	MolID    uint64
	Score    float64   // best pose energy (lower binds better)
	Genome   []float64 // best pose genome
	Evals    int64     // total energy evaluations spent
	Flops    int64     // estimated floating-point operations
	Method   string    // local-search method name
	PoseRMSD float64   // RMSD of best pose beads to pocket center frame
	Cached   bool      // true when served from a ScoreCache (Evals/Flops are 0)
}

// Dock runs the Lamarckian GA for the given scoring function and returns
// the best pose over all runs. The RNG seeds each run's private stream.
func Dock(s *ScoreFunc, p Params, r *xrand.RNG) Result {
	if p.Local == nil {
		p.Local = NewSolisWets()
	}
	best := Result{Score: math.Inf(1), Method: p.Local.Name(), MolID: s.Conf.MolID}
	for run := 0; run < p.Runs; run++ {
		rr := r.Split()
		g, e := lgaRun(s, p, rr)
		if e < best.Score {
			best.Score = e
			best.Genome = append(best.Genome[:0], g...)
		}
	}
	best.Evals = s.Evals()
	best.Flops = best.Evals * s.FlopsPerEval()
	if best.Genome != nil {
		t, q, tors := decode(best.Genome)
		pos := s.Conf.Apply(t, q, tors, nil)
		ctr := geom.Centroid(pos)
		best.PoseRMSD = ctr.Dist(s.Target.PocketCenter())
	}
	return best
}

// lgaRun executes one GA run, returning the best genome and its energy.
func lgaRun(s *ScoreFunc, p Params, r *xrand.RNG) ([]float64, float64) {
	n := s.GenomeLen()
	pop := make([][]float64, p.Population)
	fit := make([]float64, p.Population)
	for i := range pop {
		pop[i] = randomGenome(s, r)
		fit[i] = s.Score(pop[i])
	}
	order := make([]int, p.Population)
	next := make([][]float64, p.Population)
	for i := range next {
		next[i] = make([]float64, n)
	}
	for gen := 0; gen < p.Generations; gen++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return fit[order[a]] < fit[order[b]] })

		// Elitism: best genomes survive unchanged.
		for e := 0; e < p.Elitism && e < p.Population; e++ {
			copy(next[e], pop[order[e]])
		}
		// Offspring via tournament selection, crossover, mutation.
		for i := p.Elitism; i < p.Population; i++ {
			a := tournament(fit, p.TournamentK, r)
			if r.Bool(p.CrossRate) {
				b := tournament(fit, p.TournamentK, r)
				crossover(next[i], pop[a], pop[b], r)
			} else {
				copy(next[i], pop[a])
			}
			mutate(next[i], p, r)
		}
		for i := range pop {
			copy(pop[i], next[i])
			fit[i] = s.Score(pop[i])
		}
		// Lamarckian step: local search refines a random subset and the
		// improved genotype is written back into the population.
		for i := range pop {
			if r.Bool(p.LSProb) {
				fit[i] = p.Local.Refine(s, pop[i], fit[i], p.LSIters, r)
			}
		}
	}
	bi := 0
	for i := range fit {
		if fit[i] < fit[bi] {
			bi = i
		}
	}
	return pop[bi], fit[bi]
}

// randomGenome samples a pose uniformly over the search box: translation
// within the pocket neighbourhood, uniform random rotation, uniform
// torsions.
func randomGenome(s *ScoreFunc, r *xrand.RNG) []float64 {
	g := make([]float64, s.GenomeLen())
	pc := s.Target.PocketCenter()
	box := s.Target.PocketRadius() + 2
	g[0] = pc.X + r.Range(-box, box)
	g[1] = pc.Y + r.Range(-box, box)
	g[2] = pc.Z + r.Range(-box, box)
	// Random rotation: normalized 4-vector of normals is uniform on SO(3).
	g[3], g[4], g[5], g[6] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
	for k := 7; k < len(g); k++ {
		g[k] = r.Range(-math.Pi, math.Pi)
	}
	return g
}

// tournament returns the index of the fittest of k random individuals.
func tournament(fit []float64, k int, r *xrand.RNG) int {
	best := r.Intn(len(fit))
	for i := 1; i < k; i++ {
		c := r.Intn(len(fit))
		if fit[c] < fit[best] {
			best = c
		}
	}
	return best
}

// crossover writes a child into dst: per-gene uniform choice with
// occasional arithmetic blending (AutoDock uses two-point crossover; the
// uniform variant behaves equivalently for unordered pose genomes).
func crossover(dst, a, b []float64, r *xrand.RNG) {
	for k := range dst {
		switch {
		case r.Bool(0.1):
			w := r.Float64()
			dst[k] = w*a[k] + (1-w)*b[k]
		case r.Bool(0.5):
			dst[k] = a[k]
		default:
			dst[k] = b[k]
		}
	}
}

// mutate applies Gaussian gene mutation in place.
func mutate(g []float64, p Params, r *xrand.RNG) {
	for k := range g {
		if r.Bool(p.MutRate) {
			g[k] += r.Norm(0, p.MutSigma)
		}
	}
}
