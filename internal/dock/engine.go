package dock

import (
	"runtime"
	"sync"

	"impeccable/internal/chem"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

// Engine docks batches of ligands against a single receptor, reusing the
// receptor across ligands exactly as AutoDock-GPU's receptor-reuse mode
// does (§5.1.1), and processing ligands in parallel over a worker pool
// (the goroutine equivalent of GPU compute-unit parallelism hidden behind
// AutoDock-GPU's OpenMP input/staging pipeline).
type Engine struct {
	Target  *receptor.Target
	Params  Params
	Workers int    // worker pool width; 0 means GOMAXPROCS
	Seed    uint64 // base seed; each ligand docks on a private stream
}

// NewEngine builds a docking engine with default parameters.
func NewEngine(t *receptor.Target, seed uint64) *Engine {
	return &Engine{Target: t, Params: DefaultParams(), Seed: seed}
}

// DockOne docks a single molecule.
func (e *Engine) DockOne(m *chem.Molecule) Result {
	s := NewScoreFunc(e.Target, m)
	r := xrand.NewFrom(e.Seed, m.ID)
	return Dock(s, e.Params, r)
}

// DockBatch docks every molecule, preserving input order in the results.
func (e *Engine) DockBatch(mols []*chem.Molecule) []Result {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(mols) {
		workers = len(mols)
	}
	if workers <= 1 {
		out := make([]Result, len(mols))
		for i, m := range mols {
			out[i] = e.DockOne(m)
		}
		return out
	}
	out := make([]Result, len(mols))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(mols) {
					return
				}
				out[i] = e.DockOne(mols[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// DockIDs docks molecules given by ID, materializing them on the fly (the
// streaming pattern used when iterating a multi-million-compound library).
func (e *Engine) DockIDs(ids []uint64) []Result {
	mols := make([]*chem.Molecule, len(ids))
	for i, id := range ids {
		mols[i] = chem.FromID(id)
	}
	return e.DockBatch(mols)
}
