package dock

import (
	"runtime"
	"sync"

	"impeccable/internal/chem"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

// ScoreCache memoizes docking results across engine invocations. The
// engine consults it before docking and publishes fresh results into it,
// so repeated evaluations of the same (receptor, structure) pair — e.g.
// overlapping campaigns submitted by different tenants of a long-lived
// service — are served from memory instead of re-running the LGA.
//
// Implementations must be safe for concurrent use; the engine calls Get
// and Put from its worker pool. A cache handed to an Engine is assumed to
// be scoped to that engine's receptor (the service layer keys a shared
// cache by target and hands out per-target views).
//
// The cache key does not include the engine's Params or Seed: every
// engine sharing one cache must run a compatible docking configuration,
// and reuse across RNG seeds is deliberate — the first evaluation of a
// structure becomes the canonical one. Do not share one cache between
// engines of different quality settings (e.g. Runs=2 vs QualityParams).
type ScoreCache interface {
	// Get returns the cached result for the molecule, if present.
	Get(m *chem.Molecule) (Result, bool)
	// Put stores a freshly computed result for the molecule.
	Put(m *chem.Molecule, r Result)
}

// Engine docks batches of ligands against a single receptor, reusing the
// receptor across ligands exactly as AutoDock-GPU's receptor-reuse mode
// does (§5.1.1), and processing ligands in parallel over a worker pool
// (the goroutine equivalent of GPU compute-unit parallelism hidden behind
// AutoDock-GPU's OpenMP input/staging pipeline).
type Engine struct {
	Target  *receptor.Target
	Params  Params
	Workers int    // worker pool width; 0 means GOMAXPROCS
	Seed    uint64 // base seed; each ligand docks on a private stream

	// Cache, when non-nil, memoizes results by molecule structure. Hits
	// are returned with Evals and Flops zeroed (no new work was spent)
	// and Cached set.
	Cache ScoreCache

	// Cancel, when non-nil, aborts batch docking between ligands once
	// closed. Results for ligands not yet docked are zero-valued.
	Cancel <-chan struct{}
}

// NewEngine builds a docking engine with default parameters.
func NewEngine(t *receptor.Target, seed uint64) *Engine {
	return &Engine{Target: t, Params: DefaultParams(), Seed: seed}
}

// DockOne docks a single molecule, consulting the cache first when one is
// attached.
func (e *Engine) DockOne(m *chem.Molecule) Result {
	if e.Cache != nil {
		if hit, ok := e.Cache.Get(m); ok {
			// A fingerprint collision between structurally identical
			// molecules may carry a different ID; report the query's.
			hit.MolID = m.ID
			hit.Evals = 0
			hit.Flops = 0
			hit.Cached = true
			return hit
		}
	}
	s := NewScoreFunc(e.Target, m)
	r := xrand.NewFrom(e.Seed, m.ID)
	res := Dock(s, e.Params, r)
	if e.Cache != nil {
		e.Cache.Put(m, res)
	}
	return res
}

// canceled reports whether the engine's cancel channel has been closed.
func (e *Engine) canceled() bool {
	if e.Cancel == nil {
		return false
	}
	select {
	case <-e.Cancel:
		return true
	default:
		return false
	}
}

// DockBatch docks every molecule, preserving input order in the results.
// If the engine is canceled mid-batch, remaining entries are zero-valued.
func (e *Engine) DockBatch(mols []*chem.Molecule) []Result {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(mols) {
		workers = len(mols)
	}
	if workers <= 1 {
		out := make([]Result, len(mols))
		for i, m := range mols {
			if e.canceled() {
				break
			}
			out[i] = e.DockOne(m)
		}
		return out
	}
	out := make([]Result, len(mols))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(mols) || e.canceled() {
					return
				}
				out[i] = e.DockOne(mols[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// DockIDs docks molecules given by ID, materializing them on the fly (the
// streaming pattern used when iterating a multi-million-compound library).
func (e *Engine) DockIDs(ids []uint64) []Result {
	mols := make([]*chem.Molecule, len(ids))
	for i, id := range ids {
		mols[i] = chem.FromID(id)
	}
	return e.DockBatch(mols)
}
