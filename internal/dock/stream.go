package dock

import (
	"runtime"
	"sync"

	"impeccable/internal/chem"
)

// DockStream is the channel-fed counterpart of DockBatch: a worker pool
// docks molecules as they arrive on in and delivers each Result on the
// returned bounded channel the moment it completes, in completion (not
// submission) order. This is the S1 half of the streaming funnel — the
// producer is typically the ML1 screen's running top-K, so docking
// overlaps screening instead of waiting behind it.
//
// The result channel has capacity buf (values < 1 become 1), so a slow
// consumer exerts backpressure on the dock workers, which in turn stall
// the producer through in — the whole pipeline is memory-bounded.
//
// Shutdown contract: the result channel is closed once in is closed and
// every accepted molecule has been docked or discarded; the workers
// never outlive the stream. If the engine's Cancel channel closes,
// workers stop docking but keep draining in until it closes (so a
// producer blocked on send is always released), discarding molecules
// without spending evaluations.
func (e *Engine) DockStream(in <-chan *chem.Molecule, buf int) <-chan Result {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if buf < 1 {
		buf = 1
	}
	out := make(chan Result, buf)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range in {
				if e.canceled() {
					continue // drain without docking
				}
				r := e.DockOne(m)
				select {
				case out <- r:
				case <-e.Cancel:
					// Consumer may be gone; fall through to draining.
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}
