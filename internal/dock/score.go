// Package dock implements the S1 stage: high-throughput protein-ligand
// docking. It is a faithful algorithmic port of the AutoDock-GPU design
// the paper describes (§5.1.1): a Lamarckian genetic algorithm (LGA) over
// a pose genome (translation, rigid rotation, rotatable torsions), with
// two interchangeable local-search methods — the legacy Solis-Wets random
// walk and the gradient-based ADADELTA refiner — and multi-run docking
// that keeps the best-scoring pose. GPU compute-unit parallelism maps to a
// goroutine worker pool; receptor-reuse (dock many ligands to one grid) is
// preserved by precomputing per-molecule well-depth tables against a
// shared Target.
package dock

import (
	"math"

	"impeccable/internal/chem"
	"impeccable/internal/geom"
	"impeccable/internal/receptor"
)

// ScoreFunc evaluates the docking energy of a ligand pose against a
// receptor. It owns per-molecule precomputed state so repeated evaluation
// (the inner loop of the LGA) allocates nothing.
type ScoreFunc struct {
	Target *receptor.Target
	Conf   *chem.Conformer

	depths [][chem.NumBeadClasses]float64 // per (well, class) depth
	wells  []receptor.Well
	buf    []geom.Vec3 // scratch positions
	evals  int64       // energy evaluations performed
}

// Energy-model constants (kcal/mol-like units).
const (
	clashK      = 4.0  // protein body penetration stiffness
	boxK        = 0.6  // restraint pulling strays back to the pocket
	boxSlack    = 4.0  // Å beyond pocket radius before restraint engages
	elecK       = 2.0  // screened electrostatic prefactor
	selfClashK  = 2.0  // intraligand overlap stiffness
	torsStrainK = 0.2  // torsional strain per rotatable bond
	desolvK     = 0.25 // polar-group desolvation penalty inside cavity
)

// NewScoreFunc prepares a scoring function for one (target, molecule)
// pair.
func NewScoreFunc(t *receptor.Target, m *chem.Molecule) *ScoreFunc {
	conf := chem.NewConformer(m)
	return &ScoreFunc{
		Target: t,
		Conf:   conf,
		depths: t.WellDepths(m),
		wells:  t.Wells(),
		buf:    make([]geom.Vec3, len(conf.Beads)),
	}
}

// Evals returns the number of energy evaluations performed so far.
func (s *ScoreFunc) Evals() int64 { return s.evals }

// NumTorsions returns the torsional dimensionality of the genome.
func (s *ScoreFunc) NumTorsions() int { return s.Conf.NumTorsions() }

// GenomeLen returns the pose genome length: 3 translation + 4 quaternion +
// torsions.
func (s *ScoreFunc) GenomeLen() int { return 7 + s.NumTorsions() }

// decode splits a genome into its pose components. The quaternion part is
// normalized on decode so the genome stays a free-floating real vector
// (as in AutoDock-GPU's genotype handling).
func decode(g []float64) (t geom.Vec3, q geom.Quat, tors []float64) {
	t = geom.Vec3{X: g[0], Y: g[1], Z: g[2]}
	q = geom.Quat{W: g[3], X: g[4], Y: g[5], Z: g[6]}.Normalize()
	tors = g[7:]
	return t, q, tors
}

// Score returns the docking energy of the pose genome. Lower is better.
func (s *ScoreFunc) Score(g []float64) float64 {
	s.evals++
	t, q, tors := decode(g)
	s.buf = s.Conf.Apply(t, q, tors, s.buf)
	return s.intermolecular(s.buf) + s.intramolecular(s.buf, tors)
}

// intermolecular sums the receptor-ligand terms.
func (s *ScoreFunc) intermolecular(pos []geom.Vec3) float64 {
	var e float64
	pc := s.Target.PocketCenter()
	pr := s.Target.PocketRadius()
	for i, p := range pos {
		bead := s.Conf.Beads[i]
		// Subsite attraction + screened electrostatics. Cryptic
		// subsites are closed in the crystal structure and invisible
		// to docking — only the MD stages see them.
		for w := range s.wells {
			well := &s.wells[w]
			if well.Cryptic {
				continue
			}
			d2 := p.Dist2(well.Pos)
			sig2 := well.Sigma * well.Sigma
			e -= s.depths[w][bead.Class] * math.Exp(-d2/(2*sig2))
			if bead.Charge != 0 && well.Charge != 0 {
				d := math.Sqrt(d2)
				e += elecK * bead.Charge * well.Charge * math.Exp(-d/4) / (d + 1)
			}
		}
		// Steric clash with the protein body.
		if pen := s.Target.BodyPenetration(p); pen > 0 {
			e += clashK * pen * pen
		}
		// Soft box restraint keeping the search near the pocket.
		if d := p.Dist(pc); d > pr+boxSlack {
			excess := d - pr - boxSlack
			e += boxK * excess * excess
		}
		// Desolvation: polar/charged beads buried in the cavity but
		// not engaged by any well pay a penalty.
		if bead.Class == chem.BeadPolar || bead.Class == chem.BeadDonor ||
			bead.Class == chem.BeadAcceptor {
			if p.Dist(pc) < pr {
				e += desolvK
			}
		}
	}
	return e
}

// intramolecular sums ligand self-energy: soft-core overlap between beads
// separated by more than two positions in the chain, plus torsional
// strain.
func (s *ScoreFunc) intramolecular(pos []geom.Vec3, tors []float64) float64 {
	var e float64
	for i := 0; i < len(pos); i++ {
		for j := i + 3; j < len(pos); j++ {
			rr := s.Conf.Beads[i].Radius + s.Conf.Beads[j].Radius
			if d := pos[i].Dist(pos[j]); d < rr {
				ov := rr - d
				e += selfClashK * ov * ov
			}
		}
	}
	for _, a := range tors {
		e += torsStrainK * (1 - math.Cos(a))
	}
	return e
}

// Gradient computes the numerical gradient of Score at g by central
// differences into grad (len == GenomeLen). AutoDock-GPU differentiates
// its scoring grid analytically; with an analytic receptor model central
// differences give the same search behaviour at 2·n evaluations per
// gradient, which the FLOP model accounts for.
func (s *ScoreFunc) Gradient(g, grad []float64) {
	const h = 1e-4
	tmp := make([]float64, len(g))
	copy(tmp, g)
	for k := range g {
		tmp[k] = g[k] + h
		ep := s.Score(tmp)
		tmp[k] = g[k] - h
		em := s.Score(tmp)
		tmp[k] = g[k]
		grad[k] = (ep - em) / (2 * h)
	}
}

// PoseBeads returns the ligand bead positions for a pose genome — the
// docked coordinates handed to the MD stages as their starting structure.
func (s *ScoreFunc) PoseBeads(g []float64) []geom.Vec3 {
	t, q, tors := decode(g)
	return s.Conf.Apply(t, q, tors, nil)
}

// FlopsPerEval estimates floating-point operations per energy evaluation,
// used by the hpc package's FLOP accounting (Table 3 methodology, which
// counts flops per representative work unit).
func (s *ScoreFunc) FlopsPerEval() int64 {
	beads := int64(len(s.Conf.Beads))
	wells := int64(len(s.wells))
	// ~40 flops per bead-well pair, ~25 per bead for clash/box terms,
	// ~12 per intraligand pair, ~20 per torsion for pose transform.
	return beads*wells*40 + beads*25 + (beads*beads/2)*12 + int64(s.NumTorsions())*20
}
