package dock

import (
	"math"
	"testing"

	"impeccable/internal/chem"
	"impeccable/internal/geom"
	"impeccable/internal/receptor"
	"impeccable/internal/xrand"
)

func plpro() *receptor.Target { return receptor.PLPro() }

func TestScoreDeterministic(t *testing.T) {
	m := chem.FromID(5)
	s1 := NewScoreFunc(plpro(), m)
	s2 := NewScoreFunc(plpro(), m)
	g := randomGenome(s1, xrand.New(1))
	if s1.Score(g) != s2.Score(g) {
		t.Fatal("score not deterministic")
	}
}

func TestScoreFiniteEverywhere(t *testing.T) {
	m := chem.FromID(11)
	s := NewScoreFunc(plpro(), m)
	r := xrand.New(2)
	for i := 0; i < 500; i++ {
		g := randomGenome(s, r)
		// Also probe far-out and degenerate genomes.
		if i%3 == 0 {
			for k := range g {
				g[k] *= 10
			}
		}
		if i%7 == 0 {
			g[3], g[4], g[5], g[6] = 0, 0, 0, 0 // zero quaternion
		}
		e := s.Score(g)
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("non-finite score %v for genome %v", e, g)
		}
	}
}

func TestPocketPoseBeatsSolventPose(t *testing.T) {
	// A pose at the pocket center should score better than one far out
	// in solvent for essentially every molecule.
	tg := plpro()
	r := xrand.New(3)
	better := 0
	const n = 50
	for i := 0; i < n; i++ {
		m := chem.FromID(r.Uint64())
		s := NewScoreFunc(tg, m)
		in := make([]float64, s.GenomeLen())
		in[0], in[1], in[2] = tg.PocketCenter().X, tg.PocketCenter().Y, tg.PocketCenter().Z
		in[3] = 1
		out := make([]float64, s.GenomeLen())
		out[0] = 40
		out[3] = 1
		if s.Score(in) < s.Score(out) {
			better++
		}
	}
	if better < n*9/10 {
		t.Fatalf("pocket pose better in only %d/%d cases", better, n)
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	m := chem.FromID(3)
	s := NewScoreFunc(plpro(), m)
	g := randomGenome(s, xrand.New(4))
	grad := make([]float64, len(g))
	s.Gradient(g, grad)
	// Spot-check against an independent finite difference.
	const h = 1e-5
	for k := 0; k < len(g); k += 2 {
		gp := append([]float64(nil), g...)
		gp[k] += h
		gm := append([]float64(nil), g...)
		gm[k] -= h
		fd := (s.Score(gp) - s.Score(gm)) / (2 * h)
		if math.Abs(fd-grad[k]) > 1e-2*(1+math.Abs(fd)) {
			t.Fatalf("gradient[%d] = %v, finite diff %v", k, grad[k], fd)
		}
	}
}

func TestSolisWetsImproves(t *testing.T) {
	m := chem.FromID(9)
	s := NewScoreFunc(plpro(), m)
	r := xrand.New(5)
	g := randomGenome(s, r)
	e0 := s.Score(g)
	e1 := NewSolisWets().Refine(s, g, e0, 100, r)
	if e1 > e0 {
		t.Fatalf("Solis-Wets worsened energy: %v -> %v", e0, e1)
	}
	if got := s.Score(g); math.Abs(got-e1) > 1e-9 {
		t.Fatalf("returned energy %v does not match refined genome energy %v", e1, got)
	}
}

func TestADADELTAImproves(t *testing.T) {
	m := chem.FromID(9)
	s := NewScoreFunc(plpro(), m)
	r := xrand.New(6)
	g := randomGenome(s, r)
	e0 := s.Score(g)
	e1 := NewADADELTA().Refine(s, g, e0, 30, r)
	if e1 > e0 {
		t.Fatalf("ADADELTA worsened energy: %v -> %v", e0, e1)
	}
	if got := s.Score(g); math.Abs(got-e1) > 1e-9 {
		t.Fatalf("returned energy %v does not match refined genome energy %v", e1, got)
	}
}

func TestDockFindsGoodPose(t *testing.T) {
	tg := plpro()
	m := chem.FromID(21)
	s := NewScoreFunc(tg, m)
	res := Dock(s, DefaultParams(), xrand.New(7))
	if res.Genome == nil {
		t.Fatal("no pose returned")
	}
	// Docked pose must be near the pocket, not in solvent.
	tr, q, tors := decode(res.Genome)
	pos := s.Conf.Apply(tr, q, tors, nil)
	ctr := geom.Centroid(pos)
	if d := ctr.Dist(tg.PocketCenter()); d > tg.PocketRadius()+4 {
		t.Fatalf("docked centroid %v is %v Å from pocket", ctr, d)
	}
	// And must beat a random pose by a clear margin.
	var randE float64
	r := xrand.New(8)
	for i := 0; i < 20; i++ {
		randE += s.Score(randomGenome(s, r))
	}
	randE /= 20
	if res.Score >= randE {
		t.Fatalf("docked score %v no better than random mean %v", res.Score, randE)
	}
	if res.Evals <= 0 || res.Flops <= 0 {
		t.Fatalf("accounting missing: evals=%d flops=%d", res.Evals, res.Flops)
	}
}

func TestDockDeterministicGivenSeed(t *testing.T) {
	m := chem.FromID(33)
	a := Dock(NewScoreFunc(plpro(), m), DefaultParams(), xrand.New(9))
	b := Dock(NewScoreFunc(plpro(), m), DefaultParams(), xrand.New(9))
	if a.Score != b.Score {
		t.Fatalf("dock not deterministic: %v vs %v", a.Score, b.Score)
	}
}

func TestDockScoreCorrelatesWithTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// The whole pipeline rests on docking being a noisy but informative
	// observation of ground truth. Over a set of molecules, best-pose
	// score and TrueAffinity must correlate positively (both negative =
	// better).
	tg := plpro()
	eng := NewEngine(tg, 99)
	eng.Params.Runs = 2 // keep the test fast
	r := xrand.New(10)
	const n = 60
	mols := make([]*chem.Molecule, n)
	for i := range mols {
		mols[i] = chem.FromID(r.Uint64())
	}
	res := eng.DockBatch(mols)
	var sx, sy, sxx, syy, sxy float64
	for i, m := range mols {
		x := tg.TrueAffinity(m)
		y := res[i].Score
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	nf := float64(n)
	corr := (sxy/nf - sx/nf*sy/nf) /
		math.Sqrt((sxx/nf-sx/nf*sx/nf)*(syy/nf-sy/nf*sy/nf))
	// Docking is designed to be a *noisy* observation (real docking
	// scores correlate with experimental affinity at roughly this
	// level); the pipeline's enrichment tests verify the signal is
	// sufficient downstream.
	if corr < 0.2 {
		t.Fatalf("dock/truth correlation = %v, want >= 0.2", corr)
	}
	t.Logf("dock/truth correlation = %.3f", corr)
}

func TestADADELTAQualityAtLeastComparable(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; run without -short")
	}
	// §5.1.1: the gradient local search should produce scores at least
	// as good as Solis-Wets on average.
	tg := plpro()
	r := xrand.New(11)
	var sw, ad float64
	const n = 15
	for i := 0; i < n; i++ {
		m := chem.FromID(r.Uint64())
		sw += Dock(NewScoreFunc(tg, m), DefaultParams(), xrand.NewFrom(1, uint64(i))).Score
		ad += Dock(NewScoreFunc(tg, m), QualityParams(), xrand.NewFrom(1, uint64(i))).Score
	}
	if ad > sw+2.0*n/10 {
		t.Fatalf("ADADELTA mean score %v much worse than Solis-Wets %v", ad/n, sw/n)
	}
	t.Logf("mean scores: solis-wets %.2f, adadelta %.2f", sw/n, ad/n)
}

func TestDockBatchOrderAndParallelism(t *testing.T) {
	tg := plpro()
	eng := NewEngine(tg, 5)
	eng.Params.Runs = 1
	eng.Params.Generations = 5
	mols := make([]*chem.Molecule, 12)
	for i := range mols {
		mols[i] = chem.FromID(uint64(i + 100))
	}
	seq := *eng
	seq.Workers = 1
	par := *eng
	par.Workers = 4
	a := seq.DockBatch(mols)
	b := par.DockBatch(mols)
	for i := range a {
		if a[i].MolID != mols[i].ID || b[i].MolID != mols[i].ID {
			t.Fatalf("result order broken at %d", i)
		}
		if a[i].Score != b[i].Score {
			t.Fatalf("parallel dock diverged from sequential at %d: %v vs %v", i, a[i].Score, b[i].Score)
		}
	}
}

func TestDockIDs(t *testing.T) {
	eng := NewEngine(plpro(), 5)
	eng.Params.Runs = 1
	eng.Params.Generations = 3
	res := eng.DockIDs([]uint64{1, 2, 3})
	if len(res) != 3 || res[0].MolID != chem.FromID(1).ID {
		t.Fatalf("DockIDs results malformed: %+v", res)
	}
}

func TestFlopsPerEvalPositive(t *testing.T) {
	s := NewScoreFunc(plpro(), chem.FromID(1))
	if s.FlopsPerEval() <= 0 {
		t.Fatal("FlopsPerEval must be positive")
	}
}

func BenchmarkScore(b *testing.B) {
	s := NewScoreFunc(plpro(), chem.FromID(1))
	g := randomGenome(s, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Score(g)
	}
}

func BenchmarkDockOne(b *testing.B) {
	eng := NewEngine(plpro(), 1)
	m := chem.FromID(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.DockOne(m)
	}
}

func BenchmarkSolisWetsRefine(b *testing.B) {
	s := NewScoreFunc(plpro(), chem.FromID(1))
	r := xrand.New(1)
	g := randomGenome(s, r)
	e := s.Score(g)
	sw := NewSolisWets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gg := append([]float64(nil), g...)
		sw.Refine(s, gg, e, 25, r)
	}
}
