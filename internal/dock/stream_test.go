package dock

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"impeccable/internal/chem"
	"impeccable/internal/receptor"
)

func fastStreamEngine(cancel <-chan struct{}) *Engine {
	e := NewEngine(receptor.PLPro(), 1)
	e.Params.Runs = 1
	e.Params.Generations = 6
	e.Params.Population = 16
	e.Workers = 2
	e.Cancel = cancel
	return e
}

// TestDockStreamMatchesBatch: every molecule fed to the stream docks to
// the same result as the batch path (per-molecule RNG streams make dock
// results order-independent).
func TestDockStreamMatchesBatch(t *testing.T) {
	mols := make([]*chem.Molecule, 10)
	for i := range mols {
		mols[i] = chem.FromID(uint64(1000 + i))
	}
	want := map[uint64]Result{}
	for _, r := range fastStreamEngine(nil).DockBatch(mols) {
		want[r.MolID] = r
	}

	in := make(chan *chem.Molecule)
	out := fastStreamEngine(nil).DockStream(in, 4)
	go func() {
		for _, m := range mols {
			in <- m
		}
		close(in)
	}()
	n := 0
	for r := range out {
		n++
		w, ok := want[r.MolID]
		if !ok {
			t.Fatalf("unexpected result for %016x", r.MolID)
		}
		if r.Score != w.Score || r.Evals != w.Evals {
			t.Fatalf("mol %016x: stream (%v, %d) vs batch (%v, %d)",
				r.MolID, r.Score, r.Evals, w.Score, w.Evals)
		}
	}
	if n != len(mols) {
		t.Fatalf("stream delivered %d of %d results", n, len(mols))
	}
}

// TestDockStreamCancelReleasesProducer: after cancel, workers must keep
// draining the input (so a blocked producer is released) and the result
// channel must close once the input closes — with no leaked goroutines.
func TestDockStreamCancelReleasesProducer(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cancel := make(chan struct{})
	e := fastStreamEngine(cancel)
	in := make(chan *chem.Molecule) // unbuffered: producer blocks on workers
	out := e.DockStream(in, 1)

	in <- chem.FromID(9999)
	<-out // one real result, workers proven live
	close(cancel)

	// Producer keeps pushing; draining workers must accept everything.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			in <- chem.FromID(uint64(i))
		}
		close(in)
	}()
	n := 0
	for range out {
		n++
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("producer still blocked after cancel")
	}
	if n >= 500 {
		t.Fatalf("workers kept docking after cancel: %d results", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Fatalf("dock workers leaked: %d vs baseline %d", g, baseline)
	}
}

// TestDockStreamCachePopulation: a cache attached to the engine is
// populated mid-stream, so a later batch over the same molecules is
// served from it.
func TestDockStreamCachePopulation(t *testing.T) {
	cache := &mapCache{m: map[uint64]Result{}}
	e := fastStreamEngine(nil)
	e.Cache = cache

	in := make(chan *chem.Molecule, 4)
	out := e.DockStream(in, 4)
	for i := 0; i < 4; i++ {
		in <- chem.FromID(uint64(2000 + i))
	}
	close(in)
	for range out {
	}
	if n := cache.len(); n != 4 {
		t.Fatalf("cache holds %d entries, want 4", n)
	}
	// Same molecules again: all hits, zero new evaluations.
	e2 := fastStreamEngine(nil)
	e2.Cache = cache
	for _, r := range e2.DockIDs([]uint64{2000, 2001, 2002, 2003}) {
		if !r.Cached || r.Evals != 0 {
			t.Fatalf("expected cache hit, got %+v", r)
		}
	}
}

// mapCache is a minimal concurrency-safe ScoreCache for tests.
type mapCache struct {
	mu sync.Mutex
	m  map[uint64]Result
}

func (c *mapCache) Get(m *chem.Molecule) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[m.ID]
	return r, ok
}

func (c *mapCache) Put(m *chem.Molecule, r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[m.ID] = r
}

func (c *mapCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
