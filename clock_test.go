package impeccable

import "time"

var benchEpoch = time.Now()

// testingClock returns seconds since process bench epoch (helper for the
// cost-ladder benchmarks, which time heterogeneous single-shot work).
func testingClock() float64 { return time.Since(benchEpoch).Seconds() }
