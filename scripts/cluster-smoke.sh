#!/usr/bin/env bash
# cluster-smoke: end-to-end exercise of the coordinator + worker
# cluster with real processes. Starts one pure coordinator
# (-workers=0 -state-dir), two impeccable-worker processes, submits
# three campaigns, kills one worker with SIGKILL mid-run, and asserts
# every job still reaches "done" (the killed worker's job re-enters
# the queue via lease expiry and reruns on the survivor).
#
# Environment:
#   STATE_DIR   coordinator state dir (default ./cluster-state);
#               uploaded as a CI artifact on failure
#   ADDR        coordinator listen address (default 127.0.0.1:18080)
set -euo pipefail

STATE_DIR=${STATE_DIR:-cluster-state}
ADDR=${ADDR:-127.0.0.1:18080}
BASE="http://$ADDR"
BIN=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$BIN/impeccable-server" ./cmd/impeccable-server
go build -o "$BIN/impeccable-worker" ./cmd/impeccable-worker

echo "== starting coordinator (zero in-process workers)"
mkdir -p "$STATE_DIR"
"$BIN/impeccable-server" -addr "$ADDR" -workers 0 -state-dir "$STATE_DIR" \
  -lease-ttl 3s >"$STATE_DIR/coordinator.log" 2>&1 &
PIDS+=($!)

for _ in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null; then break; fi
  sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || { echo "coordinator never came up"; exit 1; }

echo "== starting two workers"
"$BIN/impeccable-worker" -server "$BASE" -id smoke-w1 -ttl 3s -poll 200ms \
  >"$STATE_DIR/worker1.log" 2>&1 &
W1=$!
PIDS+=("$W1")
"$BIN/impeccable-worker" -server "$BASE" -id smoke-w2 -ttl 3s -poll 200ms \
  >"$STATE_DIR/worker2.log" 2>&1 &
PIDS+=($!)

echo "== submitting three campaigns"
for seed in 1 2 3; do
  curl -sf -X POST "$BASE/api/v1/campaigns" -d '{
    "target": "PLPro", "library_size": 1200, "train_size": 240,
    "cg_count": 3, "top_compounds": 2, "outliers_per": 2,
    "seed": '"$seed"', "fast_protocols": true
  }' >/dev/null
done

echo "== waiting for a job to get leased, then killing worker 1"
for _ in $(seq 1 100); do
  leased=$(curl -sf "$BASE/api/v1/campaigns?state=leased" | jq length)
  if [ "$leased" -gt 0 ]; then break; fi
  sleep 0.2
done
[ "$leased" -gt 0 ] || { echo "no job ever got leased"; exit 1; }
kill -9 "$W1"
echo "killed worker 1 (pid $W1) with $leased job(s) leased"

echo "== waiting for all three jobs to finish"
deadline=$(( $(date +%s) + 600 ))
while :; do
  done_n=$(curl -sf "$BASE/api/v1/campaigns?state=done" | jq length)
  total=$(curl -sf "$BASE/api/v1/campaigns" | jq length)
  echo "   $done_n/$total done"
  if [ "$done_n" -eq 3 ]; then break; fi
  bad=$(curl -sf "$BASE/api/v1/campaigns" \
    | jq '[.[] | select(.state == "failed" or .state == "canceled")] | length')
  [ "$bad" -eq 0 ] || { echo "jobs failed/canceled"; curl -s "$BASE/api/v1/campaigns" | jq .; exit 1; }
  [ "$(date +%s)" -lt "$deadline" ] || { echo "timed out"; curl -s "$BASE/api/v1/campaigns" | jq .; exit 1; }
  sleep 2
done

echo "== final state"
curl -s "$BASE/api/v1/campaigns" | jq '[.[] | {id, state, worker}]'
curl -s "$BASE/healthz" | jq .

# Every job completed on a surviving worker even though one worker was
# SIGKILLed mid-run: the lease protocol did its job.
echo "cluster-smoke OK"
