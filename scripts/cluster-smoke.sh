#!/usr/bin/env bash
# cluster-smoke: end-to-end exercise of the coordinator + worker
# cluster with real processes. Starts one pure coordinator
# (-workers=0 -state-dir), two impeccable-worker processes, submits
# three campaigns, kills one worker with SIGKILL mid-run, and asserts
# every job still reaches "done" (the killed worker's job re-enters
# the queue via lease expiry and reruns on the survivor). A second
# scenario floods one tenant and asserts the surviving worker still
# serves a light tenant's job fairly (DRR), with the tenant-labeled
# metric families on /metrics. Along the way it scrapes /metrics —
# mid-run, after the kill, and after the flood — runs each scrape
# through metrics-lint (the 0.0.4 grammar checker), and fails unless
# lease_expiries_total shows the revoked lease.
#
# Environment:
#   STATE_DIR   coordinator state dir (default ./cluster-state);
#               uploaded as a CI artifact on failure
#   ADDR        coordinator listen address (default 127.0.0.1:18080)
set -euo pipefail

STATE_DIR=${STATE_DIR:-cluster-state}
ADDR=${ADDR:-127.0.0.1:18080}
BASE="http://$ADDR"
BIN=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "== building binaries"
# The long-lived processes run under the race detector: the smoke's
# kill/retry interleavings are exactly where a data race would hide.
go build -race -o "$BIN/impeccable-server" ./cmd/impeccable-server
go build -race -o "$BIN/impeccable-worker" ./cmd/impeccable-worker
go build -o "$BIN/metrics-lint" ./cmd/metrics-lint

# scrape_metrics NAME: fetch /metrics, save it beside the logs, and
# fail the run if the exposition does not parse.
scrape_metrics() {
  local name=$1 out="$STATE_DIR/metrics-$1.prom"
  curl -sf "$BASE/metrics" >"$out" || { echo "scrape $name failed"; exit 1; }
  "$BIN/metrics-lint" <"$out" || { echo "scrape $name fails grammar check"; exit 1; }
  echo "   scrape $name: $(wc -l <"$out") lines, valid exposition"
}

# metric_value FILE NAME: print a series' value (0 if absent).
metric_value() {
  awk -v name="$2" '$1 == name { print $2; found=1 } END { if (!found) print 0 }' "$1"
}

echo "== starting coordinator (zero in-process workers)"
mkdir -p "$STATE_DIR"
"$BIN/impeccable-server" -addr "$ADDR" -workers 0 -state-dir "$STATE_DIR" \
  -lease-ttl 3s -tenant 'flood,weight=1' -tenant 'light,weight=1' \
  -preempt-after 30s >"$STATE_DIR/coordinator.log" 2>&1 &
PIDS+=($!)

for _ in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null; then break; fi
  sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || { echo "coordinator never came up"; exit 1; }

echo "== starting two workers"
"$BIN/impeccable-worker" -server "$BASE" -id smoke-w1 -ttl 3s -poll 200ms \
  >"$STATE_DIR/worker1.log" 2>&1 &
W1=$!
PIDS+=("$W1")
"$BIN/impeccable-worker" -server "$BASE" -id smoke-w2 -ttl 3s -poll 200ms \
  >"$STATE_DIR/worker2.log" 2>&1 &
PIDS+=($!)

echo "== submitting three campaigns"
for seed in 1 2 3; do
  curl -sf -X POST "$BASE/api/v1/campaigns" -d '{
    "target": "PLPro", "library_size": 1200, "train_size": 240,
    "cg_count": 3, "top_compounds": 2, "outliers_per": 2,
    "seed": '"$seed"', "fast_protocols": true
  }' >/dev/null
done

echo "== waiting for a job to get leased, then killing worker 1"
for _ in $(seq 1 100); do
  leased=$(curl -sf "$BASE/api/v1/campaigns?state=leased" | jq length)
  if [ "$leased" -gt 0 ]; then break; fi
  sleep 0.2
done
[ "$leased" -gt 0 ] || { echo "no job ever got leased"; exit 1; }

echo "== scraping /metrics mid-run"
scrape_metrics midrun
grants=$(metric_value "$STATE_DIR/metrics-midrun.prom" impeccable_lease_grants_total)
[ "${grants%.*}" -gt 0 ] || { echo "lease_grants_total is 0 with a job leased"; exit 1; }

kill -9 "$W1"
echo "killed worker 1 (pid $W1) with $leased job(s) leased"

echo "== waiting for the killed worker's lease to expire"
for _ in $(seq 1 100); do
  expiries=$(curl -sf "$BASE/metrics" | awk '$1 == "impeccable_lease_expiries_total" { print $2 }')
  if [ "${expiries%.*}" -gt 0 ] 2>/dev/null; then break; fi
  sleep 0.3
done

echo "== scraping /metrics after the kill"
scrape_metrics post-kill
expiries=$(metric_value "$STATE_DIR/metrics-post-kill.prom" impeccable_lease_expiries_total)
requeues=$(metric_value "$STATE_DIR/metrics-post-kill.prom" impeccable_lease_requeues_total)
if [ "${expiries%.*}" -eq 0 ]; then
  echo "lease_expiries_total is still 0 after SIGKILLing a lease holder"
  exit 1
fi
echo "   lease expiries: $expiries, requeues: $requeues"

echo "== waiting for all three jobs to finish"
deadline=$(( $(date +%s) + 600 ))
while :; do
  done_n=$(curl -sf "$BASE/api/v1/campaigns?state=done" | jq length)
  total=$(curl -sf "$BASE/api/v1/campaigns" | jq length)
  echo "   $done_n/$total done"
  if [ "$done_n" -eq 3 ]; then break; fi
  bad=$(curl -sf "$BASE/api/v1/campaigns" \
    | jq '[.[] | select(.state == "failed" or .state == "canceled")] | length')
  [ "$bad" -eq 0 ] || { echo "jobs failed/canceled"; curl -s "$BASE/api/v1/campaigns" | jq .; exit 1; }
  [ "$(date +%s)" -lt "$deadline" ] || { echo "timed out"; curl -s "$BASE/api/v1/campaigns" | jq .; exit 1; }
  sleep 2
done

echo "== final state"
curl -s "$BASE/api/v1/campaigns" | jq '[.[] | {id, state, worker}]'
curl -s "$BASE/healthz" | jq .
scrape_metrics final

echo "== two-tenant flood: 5 jobs from 'flood', then 1 from 'light'"
# Only worker 2 survives, so grants are strictly sequential: DRR must
# interleave the light tenant's single job with the flood instead of
# draining the flood's backlog first.
for seed in 11 12 13 14 15; do
  curl -sf -X POST "$BASE/api/v1/campaigns" -d '{
    "target": "PLPro", "tenant": "flood", "library_size": 300,
    "train_size": 60, "cg_count": 3, "top_compounds": 2,
    "outliers_per": 2, "seed": '"$seed"', "fast_protocols": true
  }' >/dev/null
done
# The light tenant rides the X-Tenant header, the legacy body untouched.
curl -sf -X POST "$BASE/api/v1/campaigns" -H "X-Tenant: light" -d '{
  "target": "PLPro", "priority": 1, "library_size": 300, "train_size": 60,
  "cg_count": 3, "top_compounds": 2, "outliers_per": 2,
  "seed": 20, "fast_protocols": true
}' >/dev/null

echo "== waiting for the light tenant's job"
deadline=$(( $(date +%s) + 600 ))
while :; do
  light_done=$(curl -sf "$BASE/api/v1/campaigns?tenant=light&state=done" | jq length)
  if [ "$light_done" -eq 1 ]; then break; fi
  [ "$(date +%s)" -lt "$deadline" ] || { echo "light tenant starved"; curl -s "$BASE/api/v1/campaigns" | jq .; exit 1; }
  sleep 1
done
flood_done=$(curl -sf "$BASE/api/v1/campaigns?tenant=flood&state=done" | jq length)
echo "   light tenant done with $flood_done/5 flood jobs finished"
# Fairness: the light job must not have waited behind the whole flood.
if [ "$flood_done" -gt 2 ]; then
  echo "DRR failed: $flood_done flood jobs finished before the light tenant's one"
  exit 1
fi

echo "== waiting for the flood to drain"
while :; do
  flood_done=$(curl -sf "$BASE/api/v1/campaigns?tenant=flood&state=done" | jq length)
  if [ "$flood_done" -eq 5 ]; then break; fi
  [ "$(date +%s)" -lt "$deadline" ] || { echo "flood never drained"; exit 1; }
  sleep 2
done

echo "== scraping /metrics after the flood (tenant families)"
scrape_metrics tenants
for series in \
  'impeccable_tenant_admissions_total{tenant="flood"}' \
  'impeccable_tenant_admissions_total{tenant="light"}' \
  'impeccable_tenant_queue_depth{tenant="flood"}' \
  'impeccable_tenant_funnel_seconds_total{tenant="light"}'; do
  grep -qF "$series" "$STATE_DIR/metrics-tenants.prom" \
    || { echo "series $series missing from /metrics"; exit 1; }
done
flood_admitted=$(metric_value "$STATE_DIR/metrics-tenants.prom" 'impeccable_tenant_admissions_total{tenant="flood"}')
[ "${flood_admitted%.*}" -eq 5 ] || { echo "flood admissions = $flood_admitted, want 5"; exit 1; }

# Every job completed on a surviving worker even though one worker was
# SIGKILLed mid-run, and a flooding tenant never starved a light one:
# the lease protocol and the DRR arbiter did their jobs, and /metrics
# told the story as it happened.
echo "cluster-smoke OK"
