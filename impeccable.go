// Package impeccable is the public API of the IMPECCABLE reproduction: an
// integrated modeling pipeline for computational drug discovery coupling
// an ML docking surrogate (ML1), high-throughput docking (S1), ML-driven
// adaptive molecular dynamics (S2/DeepDriveMD) and ensemble binding
// free-energy estimation (S3/ESMACS) over a scalable workflow runtime
// (EnTK + pilot + RAPTOR).
//
// Quick start:
//
//	cfg := impeccable.DefaultConfig(impeccable.PLPro())
//	cfg.LibrarySize = 2000
//	cfg.FastProtocols = true
//	res, err := impeccable.RunCampaign(cfg)
//
// The package re-exports the stable subset of the internal packages; see
// the examples/ directory for complete programs and DESIGN.md for the
// system inventory.
package impeccable

import (
	"impeccable/internal/campaign"
	"impeccable/internal/chem"
	"impeccable/internal/receptor"
	"impeccable/internal/service"
	"impeccable/internal/service/worker"
)

// Re-exported core types. Aliases give external callers full access to
// the underlying types (fields and methods) without importing internal
// packages directly.
type (
	// Config sizes one campaign iteration (the IMPECCABLE funnel).
	Config = campaign.Config
	// Result is a completed campaign iteration's artifacts.
	Result = campaign.Result
	// TopComparison pairs CG and FG estimates for a top compound.
	TopComparison = campaign.TopComparison
	// FunnelStats counts compounds at each stage and carries the
	// per-stage wall-clock timings and overlap ratio.
	FunnelStats = campaign.FunnelStats
	// FunnelCounts is the path-invariant projection of FunnelStats
	// (identical across the sequential, EnTK and streaming paths).
	FunnelCounts = campaign.FunnelCounts
	// SimConfig sizes a Summit-scale simulated run (Fig. 7).
	SimConfig = campaign.SimConfig
	// SimResult is a simulated run's utilization/overhead summary.
	SimResult = campaign.SimResult
	// Target is a receptor with pocket geometry and affinity oracle.
	Target = receptor.Target
	// Molecule is a synthetic compound.
	Molecule = chem.Molecule
	// Library is a lazily generated compound library.
	Library = chem.Library
	// MethodCost is one row of the Table 2 cost ladder.
	MethodCost = campaign.MethodCost
	// DockingScaleResult is one point of the docking scaling curve.
	DockingScaleResult = campaign.DockingScaleResult
)

// DefaultConfig returns a laptop-scale campaign configuration against the
// given target, preserving the paper's stage ratios.
func DefaultConfig(t *Target) Config { return campaign.DefaultConfig(t) }

// RunCampaign executes one IMPECCABLE iteration: ML1 → S1 → S3-CG → S2 →
// S3-FG with surrogate training and outlier feedback.
func RunCampaign(cfg Config) (*Result, error) { return campaign.Run(cfg) }

// RunCampaignViaEnTK executes the same funnel codified as a five-stage
// EnTK pipeline scheduled by a real pilot over the host's cores — the
// paper's production programming model (§6.1), including the runtime
// adaptivity that appends the FG stage from S2's selections.
func RunCampaignViaEnTK(cfg Config) (*Result, error) { return campaign.RunViaEnTK(cfg) }

// RunCampaignStreaming executes the same funnel as a streaming dataflow:
// ML1 screening and S1 docking overlap through bounded channels, with
// byte-identical scientific output (equivalent to setting cfg.Streaming
// and calling RunCampaign). FunnelStats.Timings and OverlapRatio report
// the realized schedule.
func RunCampaignStreaming(cfg Config) (*Result, error) { return campaign.RunStreaming(cfg) }

// RunIterations executes n successive campaign iterations with the
// surrogate retrained each round on all accumulated docking labels (the
// active-learning loop of §8).
func RunIterations(cfg Config, n int) ([]*Result, []IterationSummary, error) {
	return campaign.RunIterations(cfg, n)
}

// IterationSummary captures the per-iteration trajectory of the
// active-learning campaign.
type IterationSummary = campaign.IterationSummary

// RunSim executes the integrated (S3-CG)-(S2)-(S3-FG) workload in
// simulated Summit time, producing the Fig. 7 utilization trace.
func RunSim(cfg SimConfig) SimResult { return campaign.RunSim(cfg) }

// DefaultSimConfig returns a medium Summit slice for RunSim.
func DefaultSimConfig() SimConfig { return campaign.DefaultSimConfig() }

// SimDockingAtScale reproduces the §8 docking-throughput claims on the
// RAPTOR overlay in simulated time.
func SimDockingAtScale(nodes, docks int, seed uint64) DockingScaleResult {
	return campaign.SimDockingAtScale(nodes, docks, seed)
}

// Table2 returns the paper's published method-cost ladder.
func Table2() []MethodCost { return campaign.Table2() }

// StandardTargets returns the four SARS-CoV-2 targets of the paper
// (3CLPro, PLPro, ADRP, NSP15).
func StandardTargets() []*Target { return receptor.StandardTargets() }

// PLPro returns the papain-like protease target (PDB 6W9C) used for the
// paper's headline results (Figs. 4-6).
func PLPro() *Target { return receptor.PLPro() }

// StandardLibraries builds the OZD and ORD screening libraries at the
// given scale (1.0 = the paper's 6.5 M compounds with 1.5 M overlap).
func StandardLibraries(seed uint64, scale float64) (ozd, ord *Library) {
	return chem.StandardLibraries(seed, scale)
}

// MoleculeFromID deterministically materializes a molecule.
func MoleculeFromID(id uint64) *Molecule { return chem.FromID(id) }

// Campaign service types: the long-lived multi-tenant evaluation server
// (job queue + bounded worker pool + sharded score cache + HTTP API).
type (
	// Service is a long-lived multi-tenant campaign evaluation service.
	Service = service.Service
	// ServiceOptions configures NewService.
	ServiceOptions = service.Options
	// SubmitRequest describes one campaign submission.
	SubmitRequest = service.SubmitRequest
	// JobSnapshot is the externally visible status of a submitted job.
	JobSnapshot = service.JobSnapshot
	// JobState is the lifecycle state of a submitted job.
	JobState = service.JobState
	// ResultSummary is the JSON-friendly projection of a campaign result.
	ResultSummary = service.ResultSummary
	// CacheStats snapshots the shared caches' effectiveness.
	CacheStats = service.CacheStats
	// ScoreEntry is one exported score-cache record (cache checkpoints).
	ScoreEntry = service.ScoreEntry
	// FeatureEntry is one exported feature-cache record.
	FeatureEntry = service.FeatureEntry
	// JobQuery bounds and filters a job listing (state/cursor/limit).
	JobQuery = service.JobQuery
	// LeaseGrant is a remote worker's claim on one job (lease API).
	LeaseGrant = service.LeaseGrant
	// WorkerResult is the outcome a remote worker posts for a leased job.
	WorkerResult = service.WorkerResult
	// TenantLimits configures one tenant's fair-share weight, queue and
	// concurrency bounds, and submit rate (ServiceOptions.Tenants).
	TenantLimits = service.TenantLimits
	// RateLimitError is the typed rejection of an over-rate submission,
	// carrying the tenant and the bucket's refill wait.
	RateLimitError = service.RateLimitError
)

// DefaultTenant is the tenant legacy (tenant-less) submissions belong to.
const DefaultTenant = service.DefaultTenant

// ErrQueueFull is returned by Submit when the tenant's pending-queue
// bound (TenantLimits.MaxQueued, defaulting to ServiceOptions.MaxQueued)
// is already full (HTTP surfaces it as 429).
var ErrQueueFull = service.ErrQueueFull

// ErrRateLimited is returned by Submit when the tenant's token bucket
// (TenantLimits.SubmitPerSec) is empty; errors.Is matches it against
// the *RateLimitError carrying the wait (HTTP surfaces it as 429 with
// Retry-After).
var ErrRateLimited = service.ErrRateLimited

// ErrLeaseLost is returned to a remote worker whose lease on a job is
// no longer valid (expired, re-assigned or canceled); the worker must
// abandon the run.
var ErrLeaseLost = service.ErrLeaseLost

// Job lifecycle states.
const (
	JobQueued   = service.StateQueued
	JobLeased   = service.StateLeased
	JobRunning  = service.StateRunning
	JobDone     = service.StateDone
	JobFailed   = service.StateFailed
	JobCanceled = service.StateCanceled
)

// NewService builds and starts a campaign service; call Shutdown when
// done. Serve its HTTP API with http.ListenAndServe(addr, s.Handler())
// or embed it in-process via Submit/Status/Result. Panics if
// ServiceOptions.StateDir is set but unusable; use OpenService to
// handle persistence errors.
func NewService(opts ServiceOptions) *Service { return service.NewService(opts) }

// OpenService builds and starts a campaign service, restoring durable
// state first when ServiceOptions.StateDir is set: the cache
// checkpoint is imported and the job journal is replayed, so terminal
// jobs are served from their persisted summaries and interrupted jobs
// re-enter the queue under their original IDs.
func OpenService(opts ServiceOptions) (*Service, error) { return service.Open(opts) }

// Remote-worker types: the pull-based executor side of the service's
// lease protocol (cmd/impeccable-worker wraps this package; embedders
// can run workers in-process the same way).
type (
	// Worker pulls leased jobs from a coordinator and executes them
	// against per-worker caches.
	Worker = worker.Worker
	// WorkerOptions configures NewWorker.
	WorkerOptions = worker.Options
)

// NewWorker builds a remote campaign executor; call Run with a context
// to start pulling jobs from WorkerOptions.Server. A worker that stops
// (or is killed) mid-job simply loses its lease: the coordinator
// re-enqueues the job and the rerun is byte-identical science.
func NewWorker(opts WorkerOptions) *Worker { return worker.New(opts) }
