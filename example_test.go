package impeccable_test

import (
	"fmt"

	"impeccable"
)

// Molecules are fully determined by their 64-bit ID: the same ID always
// regenerates the same structure, descriptors and fingerprint, which is
// how multi-million-compound libraries exist without storage.
func ExampleMoleculeFromID() {
	m := impeccable.MoleculeFromID(42)
	fmt.Println(m.SMILES == impeccable.MoleculeFromID(42).SMILES)
	fmt.Println(m.Desc.MW > 0)
	// Output:
	// true
	// true
}

// The OZD and ORD screening libraries overlap, as the paper observed for
// its ZINC- and MCULE-derived sets (~1.5M of 6.5M compounds at scale 1).
func ExampleStandardLibraries() {
	ozd, ord := impeccable.StandardLibraries(7, 0.001)
	fmt.Println(ozd.Size(), ord.Size())
	// Both libraries materialize identical molecules in the overlap:
	// OZD's last 1500 compounds are ORD's first 1500.
	fmt.Println(ozd.At(5000).SMILES == ord.At(0).SMILES)
	// Output:
	// 6500 6500
	// true
}

// Table2 returns the paper's method-cost ladder, spanning six orders of
// magnitude from docking to thermodynamic integration.
func ExampleTable2() {
	rows := impeccable.Table2()
	first, last := rows[0], rows[len(rows)-1]
	fmt.Printf("%s: %.4f node-h/ligand\n", first.Method, first.NodeHrsPerLig)
	fmt.Printf("%s: %.0f node-h/ligand\n", last.Method, last.NodeHrsPerLig)
	// Output:
	// Docking (S1): 0.0001 node-h/ligand
	// BFE-TI (not integrated): 640 node-h/ligand
}

// Each target carries a hidden ground-truth affinity oracle; pipeline
// stages never read it, but the reproduction uses it to measure
// scientific performance exactly.
func ExamplePLPro() {
	tg := impeccable.PLPro()
	fmt.Println(tg.Name, tg.PDBID)
	m := impeccable.MoleculeFromID(1)
	dg := tg.TrueAffinity(m)
	fmt.Println(dg < 2 && dg > -18)
	// Output:
	// PLPro 6W9C
	// true
}
